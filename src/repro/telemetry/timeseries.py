"""Run-directory time-series metrics: per-worker samplers + aggregation.

Tracing (``trace.py``) answers *where one shard's time went*; the
time-series layer answers *how the fleet is doing right now*.  Each
worker runs a :class:`MetricsSampler` — a daemon thread that appends a
point every ``interval`` seconds to ``<run_dir>/metrics/<worker>.jsonl``
— and readers fold the per-worker series into run-level series without
any coordination, mirroring the one-file-per-writer trace layout.

A point is a flat JSON object.  Producers supply cumulative progress
(``trials_done``, ``shards_done``) plus whatever gauges they can see
(lease counts, utilization, codec-phase seconds from the live telemetry
snapshot); the sampler derives the instantaneous ``trials_per_sec``
from consecutive points and stamps wall-clock ``ts``, worker name, and
process RSS.  Derived-at-sample rates mean readers never need a
worker's clock history to interpret its file.

No third-party dependencies: RSS comes from ``/proc/self/status`` with
a ``resource.getrusage`` fallback, and the Prometheus rendering is the
same textfile-collector style as ``telemetry.export``.
"""

from __future__ import annotations

import json
import os
import re
import resource
import sys
import threading
import time
from pathlib import Path

#: Subdirectory of a run directory holding per-worker metric series.
METRICS_DIR_NAME = "metrics"

#: Schema tag stamped on every metrics point.
METRICS_SCHEMA = "repro.metrics-point/1"

#: Default seconds between sampler points.
DEFAULT_SAMPLE_INTERVAL = 1.0


def metrics_dir(run_dir: str | os.PathLike) -> Path:
    return Path(run_dir) / METRICS_DIR_NAME


def metrics_path(run_dir: str | os.PathLike, worker: str) -> Path:
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", str(worker)) or "worker"
    return metrics_dir(run_dir) / f"{slug}.jsonl"


def process_rss_bytes() -> int:
    """Resident set size of this process, in bytes.

    Reads ``/proc/self/status`` (Linux); falls back to
    ``resource.getrusage`` where /proc is unavailable (macOS reports
    ru_maxrss in bytes, Linux in KiB).
    """
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(usage if sys.platform == "darwin" else usage * 1024)


class MetricsWriter:
    """Appends points for one worker to its metrics file.

    Single ``os.write`` per point on an ``O_APPEND`` descriptor — the
    events.jsonl discipline — so readers tolerate a torn tail.
    """

    def __init__(self, run_dir: str | os.PathLike, worker: str):
        self.worker = str(worker)
        path = metrics_path(run_dir, worker)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self.path = path

    def append(self, point: dict) -> dict:
        record = {"schema": METRICS_SCHEMA, "worker": self.worker}
        record.update({k: v for k, v in point.items() if v is not None})
        record.setdefault("ts", time.time())
        if self._fd >= 0:
            os.write(self._fd, (json.dumps(record) + "\n").encode())
        return record

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1


class MetricsSampler:
    """Daemon thread sampling a callable into a :class:`MetricsWriter`.

    ``sample`` returns a dict of gauges/counters for *now* (or ``None``
    to skip a beat).  The sampler stamps ``ts``, derives
    ``trials_per_sec`` from consecutive ``trials_done`` values, and
    attaches the process RSS.  ``stop()`` takes one final sample so
    short runs (shorter than one interval) still leave a series behind.
    """

    def __init__(
        self,
        writer: MetricsWriter,
        sample,
        interval: float = DEFAULT_SAMPLE_INTERVAL,
    ):
        self.writer = writer
        self._sample = sample
        self.interval = max(float(interval), 0.05)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_ts: float | None = None
        self._last_trials: float | None = None

    def _take(self) -> None:
        try:
            point = self._sample()
        except Exception:
            return
        if point is None:
            return
        point = dict(point)
        now = float(point.get("ts", time.time()))
        point["ts"] = now
        trials = point.get("trials_done")
        if trials is not None and "trials_per_sec" not in point:
            if self._last_ts is not None and now > self._last_ts:
                delta = float(trials) - float(self._last_trials or 0)
                point["trials_per_sec"] = round(
                    max(delta, 0.0) / (now - self._last_ts), 3
                )
            else:
                point["trials_per_sec"] = 0.0
        if trials is not None:
            self._last_ts, self._last_trials = now, float(trials)
        point.setdefault("rss_bytes", process_rss_bytes())
        self.writer.append(point)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._take()

    def start(self) -> "MetricsSampler":
        if self._thread is None:
            self._take()
            self._thread = threading.Thread(
                target=self._loop, name="repro-metrics-sampler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._take()
        self.writer.close()

    def __enter__(self) -> "MetricsSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def read_metrics(run_dir: str | os.PathLike) -> dict[str, list[dict]]:
    """Per-worker point series, each sorted by timestamp.

    Skips torn/unparseable lines, like every other run-dir log reader.
    """
    series: dict[str, list[dict]] = {}
    directory = metrics_dir(run_dir)
    if not directory.is_dir():
        return series
    for path in sorted(directory.glob("*.jsonl")):
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                point = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(point, dict) or "ts" not in point:
                continue
            worker = str(point.get("worker") or path.stem)
            series.setdefault(worker, []).append(point)
    for points in series.values():
        points.sort(key=lambda p: p.get("ts", 0.0))
    return series


def latest_points(series: dict[str, list[dict]]) -> dict[str, dict]:
    """The most recent point of each worker's series."""
    return {worker: points[-1] for worker, points in series.items() if points}


def aggregate_metrics(
    series: dict[str, list[dict]], bucket_seconds: float = 5.0
) -> list[dict]:
    """Fold per-worker series into run-level points on a shared grid.

    Workers sample on their own clocks, so points are bucketed onto a
    ``bucket_seconds`` grid; within a bucket each worker contributes the
    mean of its gauges, and the run-level point sums rates/RSS across
    workers (fleet throughput is additive) while counting distinct
    reporting workers.
    """
    bucket_seconds = max(float(bucket_seconds), 0.001)
    buckets: dict[int, dict[str, list[dict]]] = {}
    for worker, points in series.items():
        for point in points:
            key = int(point["ts"] // bucket_seconds)
            buckets.setdefault(key, {}).setdefault(worker, []).append(point)
    out: list[dict] = []
    for key in sorted(buckets):
        per_worker = buckets[key]

        def mean_of(worker_points: list[dict], field: str) -> float | None:
            values = [
                float(p[field]) for p in worker_points if p.get(field) is not None
            ]
            return sum(values) / len(values) if values else None

        rate = rss = 0.0
        trials = shards = 0.0
        leases = 0.0
        has_rate = has_rss = has_leases = False
        for worker_points in per_worker.values():
            value = mean_of(worker_points, "trials_per_sec")
            if value is not None:
                rate += value
                has_rate = True
            value = mean_of(worker_points, "rss_bytes")
            if value is not None:
                rss += value
                has_rss = True
            value = mean_of(worker_points, "leases_active")
            if value is not None:
                leases += value
                has_leases = True
            trials += max(
                (float(p.get("trials_done", 0)) for p in worker_points), default=0.0
            )
            shards += max(
                (float(p.get("shards_done", 0)) for p in worker_points), default=0.0
            )
        point = {
            "ts": key * bucket_seconds,
            "workers": len(per_worker),
            "trials_done": trials,
            "shards_done": shards,
        }
        if has_rate:
            point["trials_per_sec"] = round(rate, 3)
        if has_rss:
            point["rss_bytes"] = int(rss)
        if has_leases:
            point["leases_active"] = leases
        out.append(point)
    return out


def render_metrics_prometheus(
    series: dict[str, list[dict]], prefix: str = "repro_fleet"
) -> str:
    """Latest per-worker gauges in Prometheus text exposition format.

    Suitable for a node-exporter textfile collector: each worker's most
    recent point becomes labelled gauges, plus a fleet-wide worker count
    and summed throughput.
    """
    latest = latest_points(series)
    lines: list[str] = []

    gauges = (
        ("trials_per_sec", "trials_per_sec", "instantaneous trials per second"),
        ("trials_done", "trials_done", "cumulative trials completed"),
        ("shards_done", "shards_done", "cumulative shards completed"),
        ("rss_bytes", "rss_bytes", "resident set size in bytes"),
        ("leases_active", "leases_active", "active shard leases visible"),
        ("utilization", "utilization", "fraction of wall-clock spent computing"),
    )
    for field, metric, help_text in gauges:
        rows = [
            (worker, point[field])
            for worker, point in sorted(latest.items())
            if point.get(field) is not None
        ]
        if not rows:
            continue
        lines.append(f"# HELP {prefix}_{metric} {help_text}")
        lines.append(f"# TYPE {prefix}_{metric} gauge")
        for worker, value in rows:
            lines.append(f'{prefix}_{metric}{{worker="{worker}"}} {value}')
    lines.append(f"# HELP {prefix}_workers workers with a metrics series")
    lines.append(f"# TYPE {prefix}_workers gauge")
    lines.append(f"{prefix}_workers {len(latest)}")
    total_rate = sum(
        float(p["trials_per_sec"])
        for p in latest.values()
        if p.get("trials_per_sec") is not None
    )
    lines.append(f"# HELP {prefix}_trials_per_sec_total summed fleet throughput")
    lines.append(f"# TYPE {prefix}_trials_per_sec_total gauge")
    lines.append(f"{prefix}_trials_per_sec_total {round(total_rate, 3)}")
    return "\n".join(lines) + "\n"
