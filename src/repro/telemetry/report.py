"""The campaign run report: events + telemetry joined into markdown.

``render_run_report(run_dir)`` reads the three observability artifacts a
profiled run leaves behind — ``manifest.json`` (identity + per-shard
durations), ``events.jsonl`` (the lifecycle flight recorder) and
``telemetry.json`` (counters + span timings from the codec hot path up)
— and renders one markdown document answering the questions the paper's
scale forces: where does the wall-clock go (encode/decode vs injection
vs metric kernels), how fast is each shard, and do the two independent
clocks (runner events vs telemetry spans) agree.

The report degrades gracefully: a run without ``telemetry.json`` (not
profiled) still gets the event/shard sections, and a truncated event log
(hard kill) is read up to its last parseable line.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.telemetry.core import TelemetrySnapshot
from repro.telemetry.export import load_run_snapshot
from repro.telemetry.humanize import format_count, format_duration, format_rate

#: Spans whose *total* (inclusive) time is the natural per-phase story.
#: Everything else is reported by exclusive self-time so columns sum.
_SHARD_SPAN = "inject.shard"


def _markdown_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render a GitHub-style markdown table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"
    out = [line(headers), "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def _phase_table(snapshot: TelemetrySnapshot) -> str:
    phases = snapshot.phase_seconds()
    total = sum(phases.values())
    rows = []
    for phase, seconds in sorted(phases.items(), key=lambda kv: -kv[1]):
        share = f"{seconds / total:.1%}" if total > 0 else "-"
        rows.append([phase, format_duration(seconds), share])
    rows.append(["total", format_duration(total), "100.0%" if total > 0 else "-"])
    return _markdown_table(["phase", "self time", "share"], rows)


def _span_table(snapshot: TelemetrySnapshot) -> str:
    rows = []
    for name in sorted(snapshot.spans):
        stats = snapshot.spans[name]
        rows.append(
            [
                f"`{name}`",
                str(stats.count),
                format_duration(stats.total_seconds),
                format_duration(stats.self_seconds),
                format_duration(stats.mean_ns / 1e9),
            ]
        )
    return _markdown_table(["span", "calls", "total", "self", "mean/call"], rows)


def _counter_table(snapshot: TelemetrySnapshot) -> str:
    rows = [
        [f"`{name}`", format_count(snapshot.counters[name])]
        for name in sorted(snapshot.counters)
    ]
    return _markdown_table(["counter", "value"], rows)


def _shard_rows(manifest, events: list[dict]) -> list[list[str]]:
    """Per-shard timing rows, preferring event-log durations.

    ``shard_finish`` events carry the measured compute duration in their
    detail; the manifest's per-shard ``duration`` covers shards whose
    finish event was lost (e.g. truncated by a hard kill).
    """
    durations: dict[int, float] = {
        state.bit: state.duration
        for state in manifest.shards.values()
        if state.duration is not None
    }
    attempts: dict[int, int] = {
        state.bit: state.attempts for state in manifest.shards.values()
    }
    for event in events:
        if event.get("kind") == "shard_finish" and "bit" in event:
            duration = event.get("detail", {}).get("duration")
            if duration is not None:
                durations[int(event["bit"])] = float(duration)
    rows = []
    for bit in sorted(manifest.shards):
        state = manifest.shards[bit]
        duration = durations.get(bit)
        if duration:
            rate = format_rate(state.trials / duration, "trials")
            shown = format_duration(duration)
        else:
            rate = "-"
            shown = "-"
        rows.append(
            [str(bit), state.status, str(state.trials), shown, rate,
             str(attempts.get(bit, 0))]
        )
    return rows


def _reconciliation(snapshot: TelemetrySnapshot, manifest, events: list[dict]) -> str:
    """Compare the telemetry shard span against the runner's own clocks."""
    span = snapshot.spans.get(_SHARD_SPAN)
    if span is None:
        return ""
    event_total = 0.0
    for event in events:
        if event.get("kind") == "shard_finish":
            duration = event.get("detail", {}).get("duration")
            if duration is not None:
                event_total += float(duration)
    if event_total == 0.0:
        event_total = sum(
            state.duration for state in manifest.shards.values()
            if state.duration is not None
        )
    if event_total == 0.0:
        return ""
    delta = abs(span.total_seconds - event_total)
    rel = delta / event_total if event_total else 0.0
    return (
        f"Shard compute per telemetry (`{_SHARD_SPAN}`): "
        f"{format_duration(span.total_seconds)}; per runner events/manifest: "
        f"{format_duration(event_total)} (difference {rel:.2%})."
    )


def render_run_report(run_dir: str | os.PathLike) -> str:
    """Render the markdown run report for a campaign run directory."""
    from repro.runner.events import read_event_log
    from repro.runner.manifest import RunManifest

    run_dir = Path(run_dir)
    manifest = RunManifest.load(run_dir)
    event_path = RunManifest.event_log_path(run_dir)
    events = read_event_log(event_path) if event_path.is_file() else []
    snapshot = load_run_snapshot(run_dir)

    lines = [f"# Campaign run report — `{run_dir}`", ""]
    label = f" (label: {manifest.label})" if manifest.label else ""
    executor = f" · **executor:** {manifest.executor}" if manifest.executor else ""
    lines += [
        f"- **target:** `{manifest.target_spec}`{label}",
        f"- **status:** {manifest.status}{executor}",
        f"- **shards:** {len(manifest.completed_bits())}/{len(manifest.shards)} "
        f"completed · **trials:** {manifest.trials_done}/{manifest.trials_total}",
        f"- **data:** {manifest.data_size} elements "
        f"(fingerprint `{manifest.data_fingerprint}`)",
    ]
    finish = next(
        (e for e in reversed(events) if e.get("kind") in ("run_finish", "run_interrupted")),
        None,
    )
    if finish is not None:
        elapsed = float(finish.get("elapsed", 0.0))
        rate = finish.get("trials_per_sec")
        wall = f"- **wall clock (last run):** {format_duration(elapsed)}"
        if rate:
            wall += f" at {format_rate(float(rate), 'trials')}"
        if finish.get("jobs"):
            wall += f" with jobs={finish['jobs']}"
        lines.append(wall)
    lines.append("")

    if snapshot is not None and not snapshot.empty:
        lines += ["## Where the time went", "", _phase_table(snapshot), ""]
        lines += ["## Spans", "", _span_table(snapshot), ""]
        if snapshot.counters:
            lines += ["## Counters", "", _counter_table(snapshot), ""]
        reconciliation = _reconciliation(snapshot, manifest, events)
        if reconciliation:
            lines += ["## Reconciliation", "", reconciliation, ""]
    else:
        lines += [
            "_No `telemetry.json` in this run directory — run with "
            "`--profile` (or `REPRO_TELEMETRY=1`) to collect span and "
            "counter telemetry._",
            "",
        ]

    shard_rows = _shard_rows(manifest, events)
    if shard_rows:
        lines += [
            "## Shards",
            "",
            _markdown_table(
                ["bit", "status", "trials", "duration", "throughput", "attempts"],
                shard_rows,
            ),
            "",
        ]

    retries = sum(1 for e in events if e.get("kind") == "shard_retry")
    fallbacks = sum(1 for e in events if e.get("kind") == "shard_fallback")
    hung = sum(1 for e in events if e.get("kind") == "shard_hung")
    quarantined = sum(1 for e in events if e.get("kind") == "shard_quarantined")
    chaos = sum(1 for e in events if e.get("kind") == "chaos_fault")
    if retries or fallbacks or hung or quarantined or chaos:
        parts = [
            f"{retries} shard retr{'y' if retries == 1 else 'ies'}",
            f"{fallbacks} in-process fallback(s)",
        ]
        if hung:
            parts.append(f"{hung} hung-worker kill(s)")
        if quarantined:
            parts.append(f"{quarantined} quarantined shard file(s)")
        if chaos:
            parts.append(f"{chaos} injected chaos fault(s)")
        lines += [f"_{', '.join(parts)} recorded in the event log._", ""]

    integrity = _integrity_section(run_dir)
    if integrity:
        lines += integrity
    return "\n".join(lines)


def _integrity_section(run_dir: Path) -> list[str]:
    """The ``campaign verify`` audit, inlined into the report.

    The report joins three artifacts; this section says whether those
    artifacts can be believed (checksums, reconciliation, quarantine).
    """
    from repro.runner.verify import verify_run

    report = verify_run(run_dir)
    lines = ["## Integrity", ""]
    if report.ok:
        lines += [
            f"`campaign verify` is clean: {report.shards_checked} shard "
            f"file(s) and {report.events_checked} event(s) audited.",
            "",
        ]
        return lines
    for finding in report.findings:
        lines.append(f"- {finding.render()}")
    lines += [
        "",
        f"_{len(report.errors)} error(s), {len(report.warnings)} warning(s) — "
        f"see `posit-resiliency campaign verify {run_dir}`._",
        "",
    ]
    return lines


def write_run_report(run_dir: str | os.PathLike, out: str | os.PathLike | None = None) -> Path:
    """Render and write the report (default ``<run-dir>/report.md``)."""
    run_dir = Path(run_dir)
    path = Path(out) if out is not None else run_dir / "report.md"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_run_report(run_dir))
    return path
