"""Trial-log integrity verification.

Campaign logs travel (CSV files, suite directories); before analyzing a
log of unknown provenance it pays to *re-derive* it: every recorded
faulty value is a deterministic function of (original value, bit,
target), so a log can be checked without its original dataset.
``verify_records`` re-executes each trial's flip and reports any row
whose recorded outcome does not reproduce — catching truncated files,
mixed-up targets, or hand-edited results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.inject.results import TrialRecords
from repro.formats import NumberFormat, resolve


@dataclass
class VerificationReport:
    """Outcome of re-deriving a trial log."""

    total: int
    mismatched_faulty: int
    mismatched_fields: int
    mismatched_errors: int
    unrepresentable_originals: int
    examples: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.mismatched_faulty == 0
            and self.mismatched_fields == 0
            and self.mismatched_errors == 0
            and self.unrepresentable_originals == 0
        )

    def summary(self) -> str:
        status = "OK" if self.ok else "CORRUPT"
        return (
            f"{status}: {self.total} trials; faulty mismatches "
            f"{self.mismatched_faulty}, field mismatches {self.mismatched_fields}, "
            f"error mismatches {self.mismatched_errors}, unrepresentable "
            f"originals {self.unrepresentable_originals}"
        )


def verify_records(
    records: TrialRecords,
    target: NumberFormat | str,
    max_examples: int = 5,
) -> VerificationReport:
    """Re-derive every trial and compare against the recorded columns."""
    if isinstance(target, str):
        target = resolve(target)
    report = VerificationReport(
        total=len(records),
        mismatched_faulty=0,
        mismatched_fields=0,
        mismatched_errors=0,
        unrepresentable_originals=0,
    )
    if len(records) == 0:
        return report

    bits_per_trial = target.to_bits(records.original)
    # The recorded original must be representable (storing it is a no-op).
    reencoded = target.from_bits(bits_per_trial)
    bad_original = ~(
        (reencoded == records.original)
        | (np.isnan(reencoded) & np.isnan(records.original))
    )
    report.unrepresentable_originals = int(np.sum(bad_original))

    for bit in sorted(set(records.bit.tolist())):
        mask = records.bit == bit
        subset = records.select(mask)
        patterns = bits_per_trial[mask]
        refaulted = target.from_bits(
            patterns ^ patterns.dtype.type(1 << int(bit))
        )
        same_faulty = (refaulted == subset.faulty) | (
            np.isnan(refaulted) & np.isnan(subset.faulty)
        )
        report.mismatched_faulty += int(np.sum(~same_faulty))

        fields = target.classify_bits(patterns, int(bit))
        report.mismatched_fields += int(np.sum(fields != subset.field))

        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            abs_err = np.abs(subset.original - refaulted)
        same_err = (abs_err == subset.abs_err) | (
            np.isnan(abs_err) & np.isnan(subset.abs_err)
        )
        report.mismatched_errors += int(np.sum(~same_err))

        if len(report.examples) < max_examples:
            for i in np.where(~same_faulty)[0][: max_examples - len(report.examples)]:
                report.examples.append(
                    f"bit {bit}, trial {int(subset.trial[i])}: recorded "
                    f"faulty {subset.faulty[i]!r}, re-derived {refaulted[i]!r}"
                )
    return report
