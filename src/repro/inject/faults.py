"""Fault models.

The paper's model is a single transient bit flip (soft error / SDC) in a
stored value — implemented by XOR with a one-hot mask exactly as its
Figure 9 shows.  Multi-bit and stuck-at variants implement the future-work
section and standard fault-tolerance practice (adjacent multi-bit upsets
are the common DRAM failure mode beyond single flips).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


class FaultModel(abc.ABC):
    """Transforms bit patterns into corrupted bit patterns."""

    @abc.abstractmethod
    def apply(self, bits: np.ndarray, nbits: int, rng: np.random.Generator) -> np.ndarray:
        """Corrupt every element of ``bits`` (each element independently)."""

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line description for logs."""


@dataclass(frozen=True)
class SingleBitFlip(FaultModel):
    """Flip one fixed bit position in every element (the paper's model)."""

    bit_index: int

    def apply(self, bits: np.ndarray, nbits: int, rng: np.random.Generator) -> np.ndarray:
        if not 0 <= self.bit_index < nbits:
            raise ValueError(f"bit_index {self.bit_index} out of range for {nbits} bits")
        mask = bits.dtype.type(1 << self.bit_index)
        return bits ^ mask

    def describe(self) -> str:
        return f"single bit flip @ bit {self.bit_index}"


@dataclass(frozen=True)
class MultiBitFlip(FaultModel):
    """Flip a fixed set of bit positions in every element."""

    bit_indices: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.bit_indices:
            raise ValueError("MultiBitFlip needs at least one bit index")
        if len(set(self.bit_indices)) != len(self.bit_indices):
            raise ValueError("bit indices must be distinct")

    def apply(self, bits: np.ndarray, nbits: int, rng: np.random.Generator) -> np.ndarray:
        if any(not 0 <= b < nbits for b in self.bit_indices):
            raise ValueError(f"bit indices {self.bit_indices} out of range for {nbits} bits")
        mask = 0
        for index in self.bit_indices:
            mask |= 1 << index
        return bits ^ bits.dtype.type(mask)

    def describe(self) -> str:
        return f"multi bit flip @ bits {sorted(self.bit_indices)}"


@dataclass(frozen=True)
class AdjacentBitFlip(FaultModel):
    """Flip ``count`` adjacent bits starting at ``bit_index`` (burst upset)."""

    bit_index: int
    count: int = 2

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")

    def apply(self, bits: np.ndarray, nbits: int, rng: np.random.Generator) -> np.ndarray:
        if not 0 <= self.bit_index < nbits:
            raise ValueError(f"bit_index {self.bit_index} out of range for {nbits} bits")
        top = min(self.bit_index + self.count, nbits)
        mask = ((1 << top) - 1) ^ ((1 << self.bit_index) - 1)
        return bits ^ bits.dtype.type(mask)

    def describe(self) -> str:
        return f"{self.count}-bit adjacent flip @ bit {self.bit_index}"


@dataclass(frozen=True)
class RandomBitFlip(FaultModel):
    """Flip ``count`` uniformly random distinct bits per element."""

    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")

    def apply(self, bits: np.ndarray, nbits: int, rng: np.random.Generator) -> np.ndarray:
        if self.count > nbits:
            raise ValueError(f"cannot flip {self.count} distinct bits of {nbits}")
        flat = bits.reshape(-1)
        masks = np.zeros(flat.shape, dtype=np.uint64)
        for i in range(flat.size):
            chosen = rng.choice(nbits, size=self.count, replace=False)
            mask = 0
            for b in chosen:
                mask |= 1 << int(b)
            masks[i] = mask
        return (flat.astype(np.uint64) ^ masks).astype(bits.dtype).reshape(bits.shape)

    def describe(self) -> str:
        return f"{self.count} random bit flip(s) per element"


@dataclass(frozen=True)
class StuckAt(FaultModel):
    """Force one bit to a fixed value (hard-fault model)."""

    bit_index: int
    value: int  # 0 or 1

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")

    def apply(self, bits: np.ndarray, nbits: int, rng: np.random.Generator) -> np.ndarray:
        if not 0 <= self.bit_index < nbits:
            raise ValueError(f"bit_index {self.bit_index} out of range for {nbits} bits")
        mask = bits.dtype.type(1 << self.bit_index)
        if self.value == 1:
            return bits | mask
        return bits & bits.dtype.type(~int(mask) & ((1 << nbits) - 1))

    def describe(self) -> str:
        return f"stuck-at-{self.value} @ bit {self.bit_index}"
