"""Fault models.

The paper's model is a single transient bit flip (soft error / SDC) in a
stored value — implemented by XOR with a one-hot mask exactly as its
Figure 9 shows.  Multi-bit and stuck-at variants implement the future-work
section and standard fault-tolerance practice (adjacent multi-bit upsets
are the common DRAM failure mode beyond single flips).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np


class FaultMasks(NamedTuple):
    """The three masks any registered fault model reduces to.

    Corruption is ``((bits ^ xor) | set) & ~clear`` — XOR masks express
    every flip model, set/clear masks express stuck-at.  Each mask is an
    ``int`` (uniform across trials) or a ``uint64`` array broadcastable
    to the trial block, so batched application is pure whole-array
    pattern arithmetic feeding ``from_bits``.
    """

    xor: "int | np.ndarray"
    set: "int | np.ndarray"
    clear: "int | np.ndarray"


def apply_masks(bits: np.ndarray, masks: FaultMasks, nbits: int) -> np.ndarray:
    """Apply :class:`FaultMasks` to a pattern array (batched or scalar).

    Byte-identical to applying the same masks one element at a time —
    the property the conformance oracle checks for every registered
    model.
    """
    word = np.uint64((1 << nbits) - 1)
    xor = np.asarray(masks.xor, dtype=np.uint64)
    set_mask = np.asarray(masks.set, dtype=np.uint64)
    clear_mask = np.asarray(masks.clear, dtype=np.uint64)
    patterns = bits.astype(np.uint64)
    patterns = (((patterns ^ xor) | set_mask) & ~clear_mask) & word
    return patterns.astype(bits.dtype)


class FaultModel(abc.ABC):
    """Transforms bit patterns into corrupted bit patterns."""

    def apply(self, bits: np.ndarray, nbits: int, rng: np.random.Generator) -> np.ndarray:
        """Corrupt every element of ``bits`` (each element independently)."""
        return apply_masks(bits, self.masks(bits.shape, nbits, rng), nbits)

    @abc.abstractmethod
    def masks(
        self, shape: tuple[int, ...], nbits: int, rng: np.random.Generator
    ) -> FaultMasks:
        """The corruption masks for a trial block of the given shape."""

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line description for logs."""


@dataclass(frozen=True)
class SingleBitFlip(FaultModel):
    """Flip one fixed bit position in every element (the paper's model)."""

    bit_index: int

    def apply(self, bits: np.ndarray, nbits: int, rng: np.random.Generator) -> np.ndarray:
        if not 0 <= self.bit_index < nbits:
            raise ValueError(f"bit_index {self.bit_index} out of range for {nbits} bits")
        mask = bits.dtype.type(1 << self.bit_index)
        return bits ^ mask

    def masks(self, shape, nbits: int, rng: np.random.Generator) -> FaultMasks:
        if not 0 <= self.bit_index < nbits:
            raise ValueError(f"bit_index {self.bit_index} out of range for {nbits} bits")
        return FaultMasks(xor=1 << self.bit_index, set=0, clear=0)

    def describe(self) -> str:
        return f"single bit flip @ bit {self.bit_index}"


@dataclass(frozen=True)
class MultiBitFlip(FaultModel):
    """Flip a fixed set of bit positions in every element."""

    bit_indices: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.bit_indices:
            raise ValueError("MultiBitFlip needs at least one bit index")
        if len(set(self.bit_indices)) != len(self.bit_indices):
            raise ValueError("bit indices must be distinct")

    def apply(self, bits: np.ndarray, nbits: int, rng: np.random.Generator) -> np.ndarray:
        if any(not 0 <= b < nbits for b in self.bit_indices):
            raise ValueError(f"bit indices {self.bit_indices} out of range for {nbits} bits")
        mask = 0
        for index in self.bit_indices:
            mask |= 1 << index
        return bits ^ bits.dtype.type(mask)

    def masks(self, shape, nbits: int, rng: np.random.Generator) -> FaultMasks:
        if any(not 0 <= b < nbits for b in self.bit_indices):
            raise ValueError(f"bit indices {self.bit_indices} out of range for {nbits} bits")
        mask = 0
        for index in self.bit_indices:
            mask |= 1 << index
        return FaultMasks(xor=mask, set=0, clear=0)

    def describe(self) -> str:
        return f"multi bit flip @ bits {sorted(self.bit_indices)}"


@dataclass(frozen=True)
class AdjacentBitFlip(FaultModel):
    """Flip ``count`` adjacent bits starting at ``bit_index`` (burst upset)."""

    bit_index: int
    count: int = 2

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")

    def apply(self, bits: np.ndarray, nbits: int, rng: np.random.Generator) -> np.ndarray:
        if not 0 <= self.bit_index < nbits:
            raise ValueError(f"bit_index {self.bit_index} out of range for {nbits} bits")
        top = min(self.bit_index + self.count, nbits)
        mask = ((1 << top) - 1) ^ ((1 << self.bit_index) - 1)
        return bits ^ bits.dtype.type(mask)

    def masks(self, shape, nbits: int, rng: np.random.Generator) -> FaultMasks:
        if not 0 <= self.bit_index < nbits:
            raise ValueError(f"bit_index {self.bit_index} out of range for {nbits} bits")
        top = min(self.bit_index + self.count, nbits)
        mask = ((1 << top) - 1) ^ ((1 << self.bit_index) - 1)
        return FaultMasks(xor=mask, set=0, clear=0)

    def describe(self) -> str:
        return f"{self.count}-bit adjacent flip @ bit {self.bit_index}"


@dataclass(frozen=True)
class RandomBitFlip(FaultModel):
    """Flip ``count`` uniformly random distinct bits per element."""

    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")

    def masks(self, shape, nbits: int, rng: np.random.Generator) -> FaultMasks:
        if self.count > nbits:
            raise ValueError(f"cannot flip {self.count} distinct bits of {nbits}")
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        xor = np.zeros(size, dtype=np.uint64)
        for i in range(size):
            chosen = rng.choice(nbits, size=self.count, replace=False)
            mask = 0
            for b in chosen:
                mask |= 1 << int(b)
            xor[i] = mask
        return FaultMasks(xor=xor.reshape(shape), set=0, clear=0)

    def describe(self) -> str:
        return f"{self.count} random bit flip(s) per element"


@dataclass(frozen=True)
class BurstBitFlip(FaultModel):
    """Probabilistic burst upset: a seed flip that may smear upward.

    The anchor bit always flips; each of the ``length - 1`` bits above
    it flips independently with probability ``prob`` (clipped at the top
    of the word).  ``prob = 1`` degenerates to
    :class:`AdjacentBitFlip`; small ``prob`` models the charge-sharing
    bursts DRAM studies report, where neighbor upsets are likely but
    not certain.
    """

    bit_index: int
    length: int = 2
    prob: float = 0.5

    def __post_init__(self) -> None:
        if self.length < 2:
            raise ValueError("length must be >= 2")
        if not 0.0 < self.prob <= 1.0:
            raise ValueError("prob must be in (0, 1]")

    def masks(self, shape, nbits: int, rng: np.random.Generator) -> FaultMasks:
        if not 0 <= self.bit_index < nbits:
            raise ValueError(f"bit_index {self.bit_index} out of range for {nbits} bits")
        top = min(self.bit_index + self.length, nbits)
        tail = top - self.bit_index - 1
        anchor = np.uint64(1 << self.bit_index)
        if tail <= 0:
            return FaultMasks(xor=int(anchor), set=0, clear=0)
        # One draw block per trial block, consumed in C order so the
        # stream matches a per-trial loop drawing ``tail`` floats each.
        hits = rng.random(tuple(shape) + (tail,)) < self.prob
        weights = np.uint64(1) << (
            np.arange(self.bit_index + 1, top, dtype=np.uint64)
        )
        xor = anchor | (hits * weights).sum(axis=-1, dtype=np.uint64)
        return FaultMasks(xor=xor, set=0, clear=0)

    def describe(self) -> str:
        return f"burst({self.length},{self.prob:g}) @ bit {self.bit_index}"


@dataclass(frozen=True)
class StuckAt(FaultModel):
    """Force one bit to a fixed value (hard-fault model)."""

    bit_index: int
    value: int  # 0 or 1

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")

    def apply(self, bits: np.ndarray, nbits: int, rng: np.random.Generator) -> np.ndarray:
        if not 0 <= self.bit_index < nbits:
            raise ValueError(f"bit_index {self.bit_index} out of range for {nbits} bits")
        mask = bits.dtype.type(1 << self.bit_index)
        if self.value == 1:
            return bits | mask
        return bits & bits.dtype.type(~int(mask) & ((1 << nbits) - 1))

    def masks(self, shape, nbits: int, rng: np.random.Generator) -> FaultMasks:
        if not 0 <= self.bit_index < nbits:
            raise ValueError(f"bit_index {self.bit_index} out of range for {nbits} bits")
        mask = 1 << self.bit_index
        if self.value == 1:
            return FaultMasks(xor=0, set=mask, clear=0)
        return FaultMasks(xor=0, set=0, clear=mask)

    def describe(self) -> str:
        return f"stuck-at-{self.value} @ bit {self.bit_index}"
