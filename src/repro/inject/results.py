"""Columnar trial records and CSV round-trip.

The paper logs one CSV row per trial for offline analysis; this module is
that log.  Records are columnar NumPy arrays (not per-trial objects) so a
full campaign — hundreds of thousands of trials — stays cheap to build,
merge, filter, and aggregate.
"""

from __future__ import annotations

import csv
import io
import os
from dataclasses import dataclass, fields as dataclass_fields
from pathlib import Path

import numpy as np

#: Column order of the CSV schema, version-stamped for forward compat.
CSV_SCHEMA_VERSION = 1

_FLOAT_COLUMNS = (
    "original",
    "faulty",
    "abs_err",
    "rel_err",
    "range_rel_err",
    "mse",
    "faulty_mean",
    "faulty_std",
    "faulty_max",
    "faulty_min",
)
_INT_COLUMNS = ("trial", "bit", "index", "field", "regime_k")
_BOOL_COLUMNS = ("non_finite",)

#: Optional per-row columns: present only when a campaign needs them
#: (``fault_spec`` appears on non-``single`` fault models), so default
#: campaigns write byte-identical CSVs to every earlier schema-1 file.
_OPTIONAL_COLUMNS = ("fault_spec",)

#: What an absent optional column means when merging with one present.
_OPTIONAL_DEFAULTS = {"fault_spec": "single"}


@dataclass
class TrialRecords:
    """One campaign's trials, columnar.

    Attributes
    ----------
    trial:
        Trial ordinal within the (bit, campaign) grid.
    bit:
        Flipped bit position (LSB == 0).
    index:
        Index of the faulted element in the dataset.
    original / faulty:
        The element value before and after the flip (as float64; for the
        posit target "before" is the posit-rounded value, per the paper).
    field:
        Field id of the flipped bit in the target's enum.
    regime_k:
        Regime size of the original posit (0 for IEEE targets).
    abs_err / rel_err / range_rel_err / mse:
        Per-trial error metrics (QCAT equivalents).
    faulty_mean / faulty_std / faulty_max / faulty_min:
        Summary statistics of the faulty array (O(1)-updated).
    non_finite:
        Whether the faulty value was NaN/Inf (IEEE) or NaR (posit).
    """

    trial: np.ndarray
    bit: np.ndarray
    index: np.ndarray
    original: np.ndarray
    faulty: np.ndarray
    field: np.ndarray
    regime_k: np.ndarray
    abs_err: np.ndarray
    rel_err: np.ndarray
    range_rel_err: np.ndarray
    mse: np.ndarray
    faulty_mean: np.ndarray
    faulty_std: np.ndarray
    faulty_max: np.ndarray
    faulty_min: np.ndarray
    non_finite: np.ndarray
    fault_spec: np.ndarray | None = None

    def __post_init__(self) -> None:
        length = len(self.trial)
        for column in dataclass_fields(self):
            array = getattr(self, column.name)
            if array is None:
                continue
            if len(array) != length:
                raise ValueError(
                    f"column {column.name} has {len(array)} rows, expected {length}"
                )

    def __len__(self) -> int:
        return len(self.trial)

    # -- construction -------------------------------------------------------

    @classmethod
    def empty(cls) -> "TrialRecords":
        kwargs = {}
        for name in _INT_COLUMNS:
            kwargs[name] = np.empty(0, dtype=np.int64)
        for name in _FLOAT_COLUMNS:
            kwargs[name] = np.empty(0, dtype=np.float64)
        for name in _BOOL_COLUMNS:
            kwargs[name] = np.empty(0, dtype=bool)
        return cls(**kwargs)

    @classmethod
    def concatenate(cls, parts: list["TrialRecords"]) -> "TrialRecords":
        """Merge shards (e.g. per-bit or per-worker results)."""
        if not parts:
            return cls.empty()
        kwargs = {}
        for column in dataclass_fields(cls):
            arrays = [getattr(part, column.name) for part in parts]
            if column.name in _OPTIONAL_COLUMNS:
                if all(array is None for array in arrays):
                    kwargs[column.name] = None
                    continue
                default = _OPTIONAL_DEFAULTS[column.name]
                arrays = [
                    array
                    if array is not None
                    else np.full(len(part), default, dtype="<U32")
                    for array, part in zip(arrays, parts)
                ]
            kwargs[column.name] = np.concatenate(arrays)
        return cls(**kwargs)

    # -- filtering ----------------------------------------------------------

    def select(self, mask) -> "TrialRecords":
        """Row subset by boolean mask or index array."""
        kwargs = {}
        for column in dataclass_fields(self):
            array = getattr(self, column.name)
            kwargs[column.name] = None if array is None else array[mask]
        return TrialRecords(**kwargs)

    def for_bit(self, bit_index: int) -> "TrialRecords":
        """Trials that flipped one particular bit."""
        return self.select(self.bit == bit_index)

    def for_field(self, field_id: int) -> "TrialRecords":
        """Trials whose flipped bit landed in one field."""
        return self.select(self.field == field_id)

    def for_regime_size(self, k: int) -> "TrialRecords":
        """Trials whose original posit had regime size k."""
        return self.select(self.regime_k == k)

    def finite(self) -> "TrialRecords":
        """Trials whose faulty value stayed finite (non-catastrophic)."""
        return self.select(~self.non_finite)

    # -- CSV ------------------------------------------------------------------

    def column_names(self) -> list[str]:
        return [
            column.name
            for column in dataclass_fields(self)
            if getattr(self, column.name) is not None
        ]

    def write_csv(self, path: str | os.PathLike) -> None:
        """Write the paper-style CSV log."""
        with open(Path(path), "w", newline="") as handle:
            self._write_csv_handle(handle)

    def to_csv_string(self) -> str:
        buffer = io.StringIO()
        self._write_csv_handle(buffer)
        return buffer.getvalue()

    def _write_csv_handle(self, handle) -> None:
        writer = csv.writer(handle)
        writer.writerow([f"# schema_version={CSV_SCHEMA_VERSION}"])
        names = self.column_names()
        writer.writerow(names)
        columns = [getattr(self, name) for name in names]
        for row in zip(*columns):
            writer.writerow(
                [
                    repr(float(v))
                    if isinstance(v, (float, np.floating))
                    else (str(v) if isinstance(v, (str, np.str_)) else int(v))
                    for v in row
                ]
            )

    @classmethod
    def read_csv(cls, path: str | os.PathLike) -> "TrialRecords":
        """Read a log written by :meth:`write_csv`."""
        with open(Path(path), newline="") as handle:
            return cls._read_csv_handle(handle)

    @classmethod
    def from_csv_string(cls, text: str) -> "TrialRecords":
        return cls._read_csv_handle(io.StringIO(text))

    @classmethod
    def _read_csv_handle(cls, handle) -> "TrialRecords":
        reader = csv.reader(handle)
        first = next(reader, None)
        if first is None:
            raise ValueError("empty CSV")
        if first and first[0].startswith("# schema_version="):
            header = next(reader, None)
        else:
            header = first
        if header is None:
            raise ValueError("CSV missing header row")
        required = [
            column.name
            for column in dataclass_fields(cls)
            if column.name not in _OPTIONAL_COLUMNS
        ]
        # Optional columns append in declaration order; a file carries a
        # prefix of them (today: none, or fault_spec).
        variants = [required]
        for name in _OPTIONAL_COLUMNS:
            variants.append(variants[-1] + [name])
        if header not in variants:
            raise ValueError(f"CSV columns {header} do not match schema {required}")
        rows = list(reader)
        kwargs = {name: None for name in _OPTIONAL_COLUMNS}
        for position, name in enumerate(header):
            raw = [row[position] for row in rows]
            if name in _INT_COLUMNS:
                kwargs[name] = np.array([int(v) for v in raw], dtype=np.int64)
            elif name in _BOOL_COLUMNS:
                kwargs[name] = np.array([bool(int(v)) for v in raw], dtype=bool)
            elif name in _OPTIONAL_COLUMNS:
                kwargs[name] = np.array(raw, dtype="<U32")
            else:
                kwargs[name] = np.array([float(v) for v in raw], dtype=np.float64)
        return cls(**kwargs)
