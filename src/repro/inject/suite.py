"""Campaign suites: the paper's full evaluation as one orchestrated run.

The paper executes one campaign per (dataset field x number system) and
collects the CSV logs for offline analysis.  A :class:`CampaignSuite`
does exactly that: it runs the grid (each campaign internally parallel),
persists every trial log plus a manifest under an output directory, and
is *resumable* — rerunning skips campaigns whose logs already exist, so
an interrupted multi-hour sweep continues where it stopped.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.datasets.registry import get as get_preset, keys as dataset_keys
from repro.inject.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.inject.results import TrialRecords

MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class SuiteConfig:
    """What to run: the (fields x targets) grid and campaign parameters."""

    fields: tuple[str, ...]
    targets: tuple[str, ...] = ("ieee32", "posit32")
    data_size: int = 1 << 17
    trials_per_bit: int = 313
    seed: int = 2023

    @classmethod
    def paper_grid(cls, **overrides) -> "SuiteConfig":
        """All sixteen Table 1 fields against both 32-bit systems."""
        return cls(fields=tuple(dataset_keys()), **overrides)

    def campaign_config(self) -> CampaignConfig:
        return CampaignConfig(trials_per_bit=self.trials_per_bit, seed=self.seed)

    def log_name(self, field_key: str, target: str) -> str:
        safe = field_key.replace("/", "__")
        return f"{safe}--{target}.csv"


@dataclass
class SuiteResult:
    """Handle to a completed (or partially completed) suite directory."""

    config: SuiteConfig
    directory: Path
    completed: list[tuple[str, str]] = field(default_factory=list)
    skipped: list[tuple[str, str]] = field(default_factory=list)

    def records(self, field_key: str, target: str) -> TrialRecords:
        """Load one campaign's trial log."""
        path = self.directory / self.config.log_name(field_key, target)
        if not path.is_file():
            raise FileNotFoundError(f"no log for ({field_key}, {target}) at {path}")
        return TrialRecords.read_csv(path)

    def all_records(self, target: str) -> TrialRecords:
        """Concatenate every field's records for one target."""
        shards = [self.records(field_key, target) for field_key in self.config.fields]
        return TrialRecords.concatenate(shards)


def _write_manifest(directory: Path, config: SuiteConfig, entries: dict) -> None:
    manifest = {
        "fields": list(config.fields),
        "targets": list(config.targets),
        "data_size": config.data_size,
        "trials_per_bit": config.trials_per_bit,
        "seed": config.seed,
        "campaigns": entries,
    }
    (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))


def load_manifest(directory: str | os.PathLike) -> dict:
    """Read a suite manifest."""
    path = Path(directory) / MANIFEST_NAME
    if not path.is_file():
        raise FileNotFoundError(f"no suite manifest at {path}")
    return json.loads(path.read_text())


def run_suite(
    config: SuiteConfig,
    directory: str | os.PathLike,
    workers: int | None = None,
    resume: bool = True,
    progress=None,
    hooks=None,
) -> SuiteResult:
    """Run (or resume) the full campaign grid.

    Each campaign executes through the unified runner
    (:func:`repro.inject.run_campaign` with ``jobs=workers``), so the
    grid inherits its worker validation, retry/fallback behavior, and
    determinism guarantees.

    Parameters
    ----------
    directory:
        Output directory for trial logs and the manifest (created if
        missing).
    workers:
        Per-campaign worker processes (``None`` auto-sizes).
    resume:
        Skip (field, target) pairs whose log file already exists.
    progress:
        Optional ``progress(field, target, result_or_none)`` callback;
        ``None`` signals a skipped (already-present) campaign.
    hooks:
        Optional runner event hooks applied to every campaign
        (:mod:`repro.runner.events`).
    """
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    result = SuiteResult(config=config, directory=out_dir)
    entries: dict = {}

    for field_key in config.fields:
        preset = get_preset(field_key)  # fail fast on unknown fields
        data = None
        for target in config.targets:
            log_path = out_dir / config.log_name(field_key, target)
            if resume and log_path.is_file():
                result.skipped.append((field_key, target))
                entries[config.log_name(field_key, target)] = {"status": "skipped"}
                if progress is not None:
                    progress(field_key, target, None)
                continue
            if data is None:
                data = preset.generate(seed=config.seed, size=config.data_size)
            campaign: CampaignResult = run_campaign(
                data, target, config.campaign_config(),
                label=field_key, jobs=workers, hooks=hooks,
            )
            campaign.records.write_csv(log_path)
            entries[config.log_name(field_key, target)] = {
                "status": "completed",
                "trials": campaign.trial_count,
                "catastrophic": float(np.mean(campaign.records.non_finite)),
                "conversion_mean_rel_err": campaign.conversion.mean_relative_error,
            }
            result.completed.append((field_key, target))
            if progress is not None:
                progress(field_key, target, campaign)

    _write_manifest(out_dir, config, entries)
    return result
