"""Trial execution: inject faults into chosen elements and measure.

The campaign hot path is the *encode-once* batched pipeline: a
:class:`FieldPipeline` stores each field's dataset exactly once
(``encode_once``), decodes it once, and then serves every bit's trials
as whole-array gathers — flip/decode via ``decode_flips``, field
classification via ``classify_bits_batch``, metrics and the O(1)
faulty-summary fold as elementwise expressions over a ``(bits, trials)``
block.  Pipelines are memoized per (target, dataset fingerprint), so
the per-bit shard entry point ``run_bit_trials`` keeps its historical
signature while every shard of a field shares one encode and one
decode; fork-pool workers inherit the warm cache from the parent.

``run_single_trial`` is the one-at-a-time form mirroring the paper's
flowchart literally; the tests assert both produce identical records.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.inject.faults import FaultModel, SingleBitFlip, apply_masks
from repro.inject.results import TrialRecords
from repro.formats import NumberFormat
from repro.metrics.fast import FaultMetrics, vectorized_single_fault
from repro.metrics.pointwise import scalar_relative_error
from repro.metrics.summary import SummaryStats
from repro.telemetry import get_telemetry

#: Pipelines kept alive across shards.  The paper's campaign runs 16
#: dataset fields against two targets, and every (target, field) pair
#: keeps its own pipeline — size the memo so a full sweep never thrashes.
_PIPELINE_CACHE_SIZE = 32

_PIPELINE_CACHE: OrderedDict = OrderedDict()


@dataclass(frozen=True)
class SingleTrialResult:
    """Outcome of one fault injection (one element, one fault model)."""

    index: int
    original: float
    faulty: float
    field: int
    regime_k: int
    abs_err: float
    rel_err: float
    non_finite: bool


def run_single_trial(
    data: np.ndarray,
    index: int,
    bit_index: int,
    target: NumberFormat,
    rng: np.random.Generator | None = None,
    fault: FaultModel | None = None,
) -> SingleTrialResult:
    """Inject one fault into ``data[index]`` and measure it.

    Follows the paper's Figure 8 flow for a single trial: select the
    datum, store it in the target representation, XOR the mask, load it
    back, compare.
    """
    if fault is None:
        fault = SingleBitFlip(bit_index)
    if rng is None:
        rng = np.random.default_rng(0)
    value = np.asarray([data[index]])
    bits = target.to_bits(value)
    original = float(target.from_bits(bits)[0])
    faulty_bits = fault.apply(bits, target.nbits, rng)
    faulty = float(target.from_bits(faulty_bits)[0])
    field = int(target.classify_bits(bits, bit_index)[0])
    regime = int(target.regime_sizes(bits)[0])
    abs_err = abs(original - faulty)
    rel_err = scalar_relative_error(original, faulty)
    return SingleTrialResult(
        index=int(index),
        original=original,
        faulty=faulty,
        field=field,
        regime_k=regime,
        abs_err=abs_err,
        rel_err=rel_err,
        non_finite=bool(not np.isfinite(faulty)),
    )


def _batch_format(target: NumberFormat) -> NumberFormat:
    """The codec instance serving the batched pipeline for ``target``.

    The pipeline prefers the batch backend policy (LUT tables when
    tabulable, composed tables at 17–32 bits) over the instance's own
    backend; instances come from the registry so tables are shared
    across pipelines and fields.  Formats that cannot rehydrate from
    their name fall back to the instance itself.
    """
    from repro.formats import resolve
    from repro.formats.backends import batch_backend_name

    name = batch_backend_name(target)
    if target.backend_name == name:
        return target
    try:
        return resolve(target.name, backend=name)
    except (ValueError, KeyError):
        return target


class FieldPipeline:
    """Encode-once batch codec state for one (target, dataset) pair.

    Attributes
    ----------
    target:
        The format the campaign was asked to run against.
    batch:
        The (possibly different-backend) codec instance serving the
        batched operations; decodes are bit-identical to ``target`` by
        the conformance gate.
    data / bits / stored:
        The flat dataset, its stored patterns (encoded exactly once),
        and the representable values those patterns decode to.
    """

    def __init__(self, target: NumberFormat, data: np.ndarray) -> None:
        self.target = target
        self.batch = _batch_format(target)
        self.data = np.asarray(data).reshape(-1)
        # Encode through the target instance: its encode-once memo is
        # pre-seeded by round_trip, so campaign fields (always stored
        # round-tripped) encode for free.
        self.bits = self.target.encode_once(self.data)
        self.stored = self.batch.from_bits(self.bits)

    # -- batched execution ------------------------------------------------

    def run_bits(
        self,
        bit_list,
        indices2d: np.ndarray,
        baseline: SummaryStats,
        faults: "list[FaultModel] | None" = None,
        rngs: "list[np.random.Generator] | None" = None,
        fault_spec: str | None = None,
    ) -> TrialRecords:
        """All listed bits' trials in one batched pass.

        ``indices2d[i]`` holds the element indices of bit
        ``bit_list[i]``'s trials.  Row ``i`` of the result is
        byte-identical to the per-bit records of
        :func:`run_bit_trials` with the same indices.

        ``faults`` (one model per row, with ``rngs`` holding each row's
        generator positioned exactly as the per-shard stream would be)
        generalizes the default single-flip decode to arbitrary fault
        masks; the decode itself stays one whole-block gather.
        """
        bit_list = np.asarray(bit_list, dtype=np.int64)
        indices2d = np.asarray(indices2d, dtype=np.int64)
        bits_sel = self.bits[indices2d]
        originals = self.stored[indices2d]
        if faults is None:
            faulty = self.batch.decode_flips(bits_sel, bit_list)
        else:
            nbits = self.target.nbits
            patterns = np.empty_like(bits_sel)
            for row, fault in enumerate(faults):
                rng = rngs[row] if rngs is not None else np.random.default_rng(0)
                masks = fault.masks(bits_sel[row].shape, nbits, rng)
                patterns[row] = apply_masks(bits_sel[row], masks, nbits)
            faulty = self.batch.from_bits(patterns)
        fields = self.batch.classify_bits_batch(bits_sel, bit_list)
        regimes = self.batch.regime_sizes(bits_sel)
        metrics = vectorized_single_fault(baseline, originals, faulty)
        return _assemble_records(
            bit_list,
            indices2d,
            originals,
            faulty,
            fields,
            regimes,
            metrics,
            baseline,
            fault_spec=fault_spec,
        )

    def run_bit(
        self,
        indices: np.ndarray,
        bit_index: int,
        baseline: SummaryStats,
        rng: np.random.Generator,
        fault: FaultModel,
        fault_spec: str | None = None,
    ) -> TrialRecords:
        """One bit position's trials (the classic shard shape)."""
        indices = np.asarray(indices, dtype=np.int64)
        bits_sel = self.bits[indices]
        originals = self.stored[indices]
        if type(fault) is SingleBitFlip and fault.bit_index == bit_index:
            # The standard campaign fault never consumes the RNG, so the
            # pure-XOR batch path is stream-identical to fault.apply.
            faulty = self.batch.decode_flips(bits_sel, [bit_index])[0]
        else:
            masks = fault.masks(bits_sel.shape, self.target.nbits, rng)
            faulty = self.batch.decode_masked(bits_sel, masks)
        fields = self.batch.classify_bits(bits_sel, bit_index)
        regimes = self.batch.regime_sizes(bits_sel)
        metrics = vectorized_single_fault(baseline, originals, faulty)
        bit_row = np.asarray([bit_index], dtype=np.int64)
        return _assemble_records(
            bit_row,
            indices[None, :],
            originals[None, :],
            np.asarray(faulty)[None, :],
            np.asarray(fields)[None, :],
            np.asarray(regimes)[None, :],
            metrics.reshape((1, indices.size)),
            baseline,
            fault_spec=fault_spec,
        )


def field_pipeline(target: NumberFormat, data) -> FieldPipeline:
    """Memoized :class:`FieldPipeline` per (target, dataset fingerprint)."""
    array = np.ascontiguousarray(np.asarray(data).reshape(-1))
    key = (
        target.name,
        array.dtype.str,
        array.shape,
        hashlib.blake2b(array.tobytes(), digest_size=16).digest(),
    )
    pipeline = _PIPELINE_CACHE.get(key)
    if pipeline is None:
        pipeline = FieldPipeline(target, array)
        _PIPELINE_CACHE[key] = pipeline
        while len(_PIPELINE_CACHE) > _PIPELINE_CACHE_SIZE:
            _PIPELINE_CACHE.popitem(last=False)
    else:
        _PIPELINE_CACHE.move_to_end(key)
    return pipeline


def run_bit_trials(
    data: np.ndarray,
    indices: np.ndarray,
    bit_index: int,
    target: NumberFormat,
    baseline: SummaryStats,
    rng: np.random.Generator | None = None,
    fault: FaultModel | None = None,
    fault_spec: str | None = None,
) -> TrialRecords:
    """All trials for one bit position, vectorized.

    Parameters
    ----------
    data:
        The full dataset (float array).
    indices:
        Element index chosen for each trial.
    bit_index:
        Bit to flip (LSB == 0); also used to label records when a custom
        ``fault`` touches several bits.
    baseline:
        Precomputed summary of ``data`` (the paper computes it once).
    fault_spec:
        Canonical fault spec to stamp into the records' ``fault_spec``
        column; ``None`` (the default single-flip campaign) leaves the
        column absent so CSVs stay byte-identical to the schema-1 form.
    """
    if fault is None:
        fault = SingleBitFlip(bit_index)
    if rng is None:
        rng = np.random.default_rng(0)
    indices = np.asarray(indices, dtype=np.int64)

    telemetry = get_telemetry()
    if not telemetry.enabled:
        return _run_bit_trials(data, indices, bit_index, target, baseline, rng, fault, fault_spec)
    with telemetry.span("inject.trial"):
        records = _run_bit_trials(
            data, indices, bit_index, target, baseline, rng, fault, fault_spec
        )
    telemetry.count("inject.trials", len(indices))
    return records


def _run_bit_trials(
    data: np.ndarray,
    indices: np.ndarray,
    bit_index: int,
    target: NumberFormat,
    baseline: SummaryStats,
    rng: np.random.Generator,
    fault: FaultModel,
    fault_spec: str | None = None,
) -> TrialRecords:
    pipeline = field_pipeline(target, data)
    return pipeline.run_bit(indices, bit_index, baseline, rng, fault, fault_spec)


def _assemble_records(
    bit_list: np.ndarray,
    indices2d: np.ndarray,
    originals: np.ndarray,
    faulty: np.ndarray,
    fields: np.ndarray,
    regimes: np.ndarray,
    metrics: FaultMetrics,
    baseline: SummaryStats,
    fault_spec: str | None = None,
) -> TrialRecords:
    """Fold summary stats and flatten a ``(bits, trials)`` block to records.

    The faulty array of each trial equals the original with one
    replacement, so its sum/extremes shift by closed form (see
    ``SummaryStats.with_replacement``) — computed here once for the
    whole block instead of per bit.
    """
    count = baseline.count
    with np.errstate(over="ignore", invalid="ignore"):
        new_total = baseline.total - originals + faulty
        faulty_mean = new_total / count
        old_dev = originals - baseline.center
        new_dev = faulty - baseline.center
        new_centered_sq = baseline.centered_sq - old_dev * old_dev + new_dev * new_dev
        mean_shift = faulty_mean - baseline.center
        variance = np.maximum(new_centered_sq / count - mean_shift * mean_shift, 0.0)
        faulty_std = np.sqrt(variance)
    surviving_max = np.where(originals == baseline.maximum, baseline.maximum2, baseline.maximum)
    surviving_min = np.where(originals == baseline.minimum, baseline.minimum2, baseline.minimum)
    faulty_max = np.fmax(surviving_max, faulty)
    faulty_min = np.fmin(surviving_min, faulty)

    rows, trials = indices2d.shape
    return TrialRecords(
        trial=np.tile(np.arange(trials, dtype=np.int64), rows),
        bit=np.repeat(bit_list, trials),
        index=indices2d.ravel().copy(),
        original=np.asarray(originals, dtype=np.float64).ravel(),
        faulty=np.asarray(faulty, dtype=np.float64).ravel(),
        field=np.asarray(fields, dtype=np.int64).ravel(),
        regime_k=np.asarray(regimes, dtype=np.int64).ravel(),
        abs_err=metrics.max_abs_err.ravel(),
        rel_err=metrics.max_rel_err.ravel(),
        range_rel_err=metrics.range_rel_err.ravel(),
        mse=metrics.mse.ravel(),
        faulty_mean=np.asarray(faulty_mean, dtype=np.float64).ravel(),
        faulty_std=np.asarray(faulty_std, dtype=np.float64).ravel(),
        faulty_max=np.asarray(faulty_max, dtype=np.float64).ravel(),
        faulty_min=np.asarray(faulty_min, dtype=np.float64).ravel(),
        non_finite=metrics.non_finite.ravel(),
        fault_spec=(
            None
            if fault_spec is None
            else np.full(rows * trials, fault_spec, dtype="<U32")
        ),
    )
