"""Trial execution: inject faults into chosen elements and measure.

``run_bit_trials`` is the campaign's hot path: all trials for one bit
position are executed as a handful of vectorized array expressions
(gather -> store-convert -> flip -> load-convert -> O(1) metrics), per
the HPC guideline of replacing per-trial Python loops with NumPy.

``run_single_trial`` is the one-at-a-time form mirroring the paper's
flowchart literally; the tests assert both produce identical records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.inject.faults import FaultModel, SingleBitFlip
from repro.inject.results import TrialRecords
from repro.formats import NumberFormat
from repro.metrics.fast import vectorized_single_fault
from repro.metrics.summary import SummaryStats
from repro.telemetry import get_telemetry


@dataclass(frozen=True)
class SingleTrialResult:
    """Outcome of one fault injection (one element, one fault model)."""

    index: int
    original: float
    faulty: float
    field: int
    regime_k: int
    abs_err: float
    rel_err: float
    non_finite: bool


def run_single_trial(
    data: np.ndarray,
    index: int,
    bit_index: int,
    target: NumberFormat,
    rng: np.random.Generator | None = None,
    fault: FaultModel | None = None,
) -> SingleTrialResult:
    """Inject one fault into ``data[index]`` and measure it.

    Follows the paper's Figure 8 flow for a single trial: select the
    datum, store it in the target representation, XOR the mask, load it
    back, compare.
    """
    if fault is None:
        fault = SingleBitFlip(bit_index)
    if rng is None:
        rng = np.random.default_rng(0)
    value = np.asarray([data[index]])
    bits = target.to_bits(value)
    original = float(target.from_bits(bits)[0])
    faulty_bits = fault.apply(bits, target.nbits, rng)
    faulty = float(target.from_bits(faulty_bits)[0])
    field = int(target.classify_bits(bits, bit_index)[0])
    regime = int(target.regime_sizes(bits)[0])
    abs_err = abs(original - faulty)
    if original != 0:
        rel_err = abs_err / abs(original)
    elif faulty == 0:
        rel_err = 0.0
    else:
        rel_err = float("nan")  # undefined against a zero original
    return SingleTrialResult(
        index=int(index),
        original=original,
        faulty=faulty,
        field=field,
        regime_k=regime,
        abs_err=abs_err,
        rel_err=rel_err,
        non_finite=bool(not np.isfinite(faulty)),
    )


def run_bit_trials(
    data: np.ndarray,
    indices: np.ndarray,
    bit_index: int,
    target: NumberFormat,
    baseline: SummaryStats,
    rng: np.random.Generator | None = None,
    fault: FaultModel | None = None,
) -> TrialRecords:
    """All trials for one bit position, vectorized.

    Parameters
    ----------
    data:
        The full dataset (float array).
    indices:
        Element index chosen for each trial.
    bit_index:
        Bit to flip (LSB == 0); also used to label records when a custom
        ``fault`` touches several bits.
    baseline:
        Precomputed summary of ``data`` (the paper computes it once).
    """
    if fault is None:
        fault = SingleBitFlip(bit_index)
    if rng is None:
        rng = np.random.default_rng(0)
    indices = np.asarray(indices, dtype=np.int64)

    telemetry = get_telemetry()
    if not telemetry.enabled:
        return _run_bit_trials(data, indices, bit_index, target, baseline, rng, fault)
    with telemetry.span("inject.trial"):
        records = _run_bit_trials(data, indices, bit_index, target, baseline, rng, fault)
    telemetry.count("inject.trials", len(indices))
    return records


def _run_bit_trials(
    data: np.ndarray,
    indices: np.ndarray,
    bit_index: int,
    target: NumberFormat,
    baseline: SummaryStats,
    rng: np.random.Generator,
    fault: FaultModel,
) -> TrialRecords:
    selected = np.asarray(data).reshape(-1)[indices]
    bits = target.to_bits(selected)
    originals = target.from_bits(bits)
    faulty_bits = fault.apply(bits, target.nbits, rng)
    faulty = target.from_bits(faulty_bits)

    fields = target.classify_bits(bits, bit_index)
    regimes = target.regime_sizes(bits)
    metrics = vectorized_single_fault(baseline, originals, faulty)

    # O(1) faulty-array summary statistics per trial.  The faulty array
    # equals the original with one replacement, so its sum/extremes shift
    # by closed form (see SummaryStats.with_replacement).
    count = baseline.count
    with np.errstate(over="ignore", invalid="ignore"):
        new_total = baseline.total - originals + faulty
        faulty_mean = new_total / count
        old_dev = originals - baseline.center
        new_dev = faulty - baseline.center
        new_centered_sq = baseline.centered_sq - old_dev * old_dev + new_dev * new_dev
        mean_shift = faulty_mean - baseline.center
        variance = np.maximum(new_centered_sq / count - mean_shift * mean_shift, 0.0)
        faulty_std = np.sqrt(variance)
    surviving_max = np.where(originals == baseline.maximum, baseline.maximum2, baseline.maximum)
    surviving_min = np.where(originals == baseline.minimum, baseline.minimum2, baseline.minimum)
    faulty_max = np.fmax(surviving_max, faulty)
    faulty_min = np.fmin(surviving_min, faulty)

    n = len(indices)
    return TrialRecords(
        trial=np.arange(n, dtype=np.int64),
        bit=np.full(n, bit_index, dtype=np.int64),
        index=indices,
        original=np.asarray(originals, dtype=np.float64),
        faulty=np.asarray(faulty, dtype=np.float64),
        field=np.asarray(fields, dtype=np.int64),
        regime_k=np.asarray(regimes, dtype=np.int64),
        abs_err=metrics["max_abs_err"],
        rel_err=metrics["max_rel_err"],
        range_rel_err=metrics["range_rel_err"],
        mse=metrics["mse"],
        faulty_mean=np.asarray(faulty_mean, dtype=np.float64),
        faulty_std=np.asarray(faulty_std, dtype=np.float64),
        faulty_max=np.asarray(faulty_max, dtype=np.float64),
        faulty_min=np.asarray(faulty_min, dtype=np.float64),
        non_finite=~np.isfinite(np.asarray(faulty)),
    )
