"""The fault-injection campaign engine (the paper's Figure 8).

A campaign executes, for each bit position of the target format, a fixed
number of trials; each trial flips that bit in one randomly selected
element and records error metrics.  The paper runs 313 trials per bit
position x 32 bits ~= 10,000 trials per dataset field.

Flow (matching the flowchart):

1. load the field into an array;
2. compute baseline summary statistics;
3. seed the RNG for reproducibility;
4. for every bit position, for every trial: pick a random element, copy
   the data (conceptually — we never materialize the faulty array, see
   :mod:`repro.metrics.fast`), build the one-hot mask, XOR it in the
   target representation, convert back, compute metrics;
5. log every trial as a CSV row.

Storage model: the array is considered *stored in the target format* —
the baseline is the round-tripped (representable) data, so error metrics
isolate the flip from the float->posit conversion error.  The conversion
error itself is reported separately in :attr:`CampaignResult.conversion`
(the paper measures it at ~1e-5 relative for posit32 and excludes it the
same way).

Determinism: the seed expands into one independent child seed per bit
position via ``SeedSequence.spawn``, so results are bit-identical whether
bits run serially, in any order, or across processes
(:mod:`repro.inject.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats import NumberFormat
from repro.inject.faultspec import DEFAULT_FAULT_SPEC, canonical_fault_spec, resolve_fault
from repro.inject.results import TrialRecords
from repro.inject.trial import field_pipeline, run_bit_trials
from repro.metrics.summary import SummaryStats
from repro.telemetry import get_telemetry

#: The paper's trial count per bit position.
PAPER_TRIALS_PER_BIT = 313


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of a fault-injection campaign.

    Attributes
    ----------
    trials_per_bit:
        Trials per bit position (paper: 313).
    bits:
        Bit positions to flip; None means every bit of the target.
    seed:
        Root seed; campaigns with equal seeds are bit-identical.
    fault:
        Fault-model spec (see :mod:`repro.inject.faultspec`); stored in
        canonical form.  The default ``single`` is the paper's model and
        keeps runs byte-identical to pre-fault-dimension campaigns.
    """

    trials_per_bit: int = PAPER_TRIALS_PER_BIT
    bits: tuple[int, ...] | None = None
    seed: int = 2023
    fault: str = DEFAULT_FAULT_SPEC

    def __post_init__(self) -> None:
        if self.trials_per_bit <= 0:
            raise ValueError(f"trials_per_bit must be positive, got {self.trials_per_bit}")
        object.__setattr__(self, "fault", canonical_fault_spec(self.fault))

    def resolved_fault(self):
        """The parsed :class:`~repro.inject.faultspec.ResolvedFault`."""
        return resolve_fault(self.fault)

    def resolved_bits(self, target: NumberFormat) -> tuple[int, ...]:
        """The concrete bit list for a target."""
        if self.bits is None:
            return tuple(range(target.nbits))
        for bit in self.bits:
            if not 0 <= bit < target.nbits:
                raise ValueError(f"bit {bit} out of range for {target.name}")
        return tuple(self.bits)


@dataclass(frozen=True)
class ConversionReport:
    """Float -> target -> float conversion error over the dataset.

    The paper reports the analogous number for SoftPosit's double
    conversion (~1e-5 relative) and removes it from the experiment; this
    report documents how representable the data is in the target format.
    """

    mean_relative_error: float
    max_relative_error: float
    exact_fraction: float


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    target_name: str
    config: CampaignConfig
    baseline: SummaryStats
    records: TrialRecords
    conversion: ConversionReport
    data_size: int
    label: str = ""
    extras: dict = field(default_factory=dict)

    @property
    def trial_count(self) -> int:
        return len(self.records)


def conversion_report(data, target: NumberFormat) -> ConversionReport:
    """Measure the representation error of storing ``data`` in ``target``."""
    raw = np.asarray(data, dtype=np.float64).reshape(-1)
    stored = target.round_trip(raw)
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.abs(raw - stored) / np.abs(raw)
    rel = np.where(raw == 0, np.where(stored == 0, 0.0, np.inf), rel)
    finite = rel[np.isfinite(rel)]
    return ConversionReport(
        mean_relative_error=float(np.mean(finite)) if finite.size else 0.0,
        max_relative_error=float(np.max(finite)) if finite.size else 0.0,
        exact_fraction=float(np.mean(stored == raw)),
    )


#: Memoized SeedSequence children per (seed, nbits): spawning is pure
#: (the children are only ever read, never re-spawned), and a multi-field
#: campaign re-derives the same spawn tree once per field otherwise.
_BIT_SEED_CACHE: dict[tuple[int, int], tuple[np.random.SeedSequence, ...]] = {}
_BIT_SEED_CACHE_SIZE = 16


def bit_seeds(config: CampaignConfig, target: NumberFormat) -> dict[int, np.random.SeedSequence]:
    """One independent child seed per bit position.

    Children are spawned for *all* bits of the target in bit order, then
    filtered, so a campaign over a subset of bits reproduces the same
    per-bit streams as the full campaign.
    """
    cache_key = (config.seed, target.nbits)
    children = _BIT_SEED_CACHE.get(cache_key)
    if children is None:
        root = np.random.SeedSequence(config.seed)
        children = tuple(root.spawn(target.nbits))
        _BIT_SEED_CACHE[cache_key] = children
        while len(_BIT_SEED_CACHE) > _BIT_SEED_CACHE_SIZE:
            del _BIT_SEED_CACHE[next(iter(_BIT_SEED_CACHE))]
    wanted = set(config.resolved_bits(target))
    return {bit: children[bit] for bit in range(target.nbits) if bit in wanted}


def run_campaign(
    data,
    target: NumberFormat | str,
    config: CampaignConfig | None = None,
    label: str = "",
    *,
    jobs: int | None = 1,
    executor=None,
    run_dir=None,
    hooks=None,
    progress: bool = False,
    resume: bool = False,
    dataset: dict | None = None,
    max_retries: int = 2,
    shard_timeout: float | None = None,
    heartbeat_timeout: float | None = None,
    chaos=None,
    telemetry=None,
    trace=None,
    metrics_interval: float = 1.0,
) -> CampaignResult:
    """Run a full campaign (see module docstring for the flow).

    The one campaign entry point: serial by default, parallel with
    ``jobs=N`` (``None`` auto-sizes to the CPU count), resumable and
    observable when given a ``run_dir``.  Results are bit-identical for
    any ``jobs`` value and across interrupt/resume cycles — per-bit
    ``SeedSequence.spawn`` children make the trial streams independent
    of scheduling.

    Parameters beyond the campaign itself (all keyword-only):

    jobs:
        Worker processes; ``1`` stays in-process.  Zero or negative
        values raise ``ValueError``; values above the shard count are
        capped with a warning.
    executor:
        Execution mechanism: ``None`` picks serial or pool from ``jobs``
        (the historical behaviour); ``"serial"``, ``"pool"`` or
        ``"work-stealing"`` select an executor from
        :data:`repro.runner.executors.EXECUTOR_REGISTRY`; an
        :class:`repro.runner.executors.Executor` instance is used as-is.
        Results are bit-identical across executors for a fixed seed.
    run_dir:
        Directory receiving shard records, a JSON run manifest, and a
        JSONL event log; enables ``resume=True`` and the
        ``posit-resiliency campaign resume/status`` commands.
    hooks / progress:
        Event consumers (:mod:`repro.runner.events`); ``progress=True``
        attaches a terminal progress renderer.
    resume:
        Continue a partial run in ``run_dir`` instead of starting over.
    dataset:
        Optional provenance mapping stored in the manifest so a resume
        can regenerate the data (the CLI records its preset here).
    max_retries:
        Per-shard retry budget before degrading to in-process execution
        (parallel runs) or failing (serial runs).
    shard_timeout / heartbeat_timeout:
        Stall detection for pool runs, both measured from the moment a
        worker claims a shard: ``heartbeat_timeout`` bounds how long a
        claimed shard may go unfinished before its worker is killed and
        the shard requeued; ``shard_timeout`` is the per-shard compute
        budget.  Dead workers are detected immediately either way.
    chaos:
        Optional :class:`repro.chaos.FaultPlan` injecting infrastructure
        faults into the run (testing the harness itself; see
        ``docs/robustness.md``).
    telemetry:
        Profiling control (see :func:`repro.telemetry.resolve_collector`):
        ``None`` follows the ``REPRO_TELEMETRY`` environment variable,
        ``True`` profiles this run (writing ``telemetry.json`` into
        ``run_dir`` and attaching the merged snapshot to
        ``result.extras["telemetry"]``), ``False`` forces it off, and a
        :class:`repro.telemetry.Telemetry` instance aggregates across
        several runs.
    trace:
        Distributed tracing + time-series metrics control (see
        :func:`repro.telemetry.resolve_trace`): ``None`` follows
        ``REPRO_TRACE``, ``True`` makes every process of this run append
        span records to ``<run_dir>/trace/`` and metric points to
        ``<run_dir>/metrics/``.  Purely side-channel — shard CSVs are
        byte-identical with tracing on or off.
    """
    from repro.runner import CampaignRunner

    runner = CampaignRunner(
        data,
        target,
        config,
        label=label,
        jobs=jobs,
        executor=executor,
        run_dir=run_dir,
        hooks=hooks,
        progress=progress,
        dataset=dataset,
        max_retries=max_retries,
        shard_timeout=shard_timeout,
        heartbeat_timeout=heartbeat_timeout,
        chaos=chaos,
        telemetry=telemetry,
        trace=trace,
        metrics_interval=metrics_interval,
    )
    return runner.run(resume=resume)


def run_campaign_shard(
    stored_data: np.ndarray,
    target: NumberFormat,
    bit: int,
    trials: int,
    seed: np.random.SeedSequence,
    baseline: SummaryStats,
    fault_spec: str = DEFAULT_FAULT_SPEC,
) -> TrialRecords:
    """All trials of one bit position (the unit of parallel work).

    ``stored_data`` must already be round-tripped through the target so
    every shard sees identical stored values.  ``fault_spec`` names the
    fault model (:mod:`repro.inject.faultspec`); the default ``single``
    takes exactly the historical path — same RNG stream, same records,
    no ``fault_spec`` CSV column.
    """
    fault = None
    spec_label = None
    if fault_spec != DEFAULT_FAULT_SPEC:
        resolved = resolve_fault(fault_spec)
        if not resolved.is_default:
            fault = resolved.for_bit(bit, target.nbits)
            spec_label = resolved.spec
    telemetry = get_telemetry()
    if not telemetry.enabled:
        rng = np.random.default_rng(seed)
        indices = rng.integers(0, stored_data.size, size=trials)
        return run_bit_trials(
            stored_data, indices, bit, target, baseline,
            rng=rng, fault=fault, fault_spec=spec_label,
        )
    with telemetry.span("inject.shard"):
        rng = np.random.default_rng(seed)
        indices = rng.integers(0, stored_data.size, size=trials)
        records = run_bit_trials(
            stored_data, indices, bit, target, baseline,
            rng=rng, fault=fault, fault_spec=spec_label,
        )
    telemetry.count("inject.shards")
    return records


#: Memoized (bits, trials) index blocks: the draws depend only on
#: (seed, bit list, trial count, dataset size), so every same-sized
#: field of a campaign reuses one block instead of re-deriving per-bit
#: generators.  Arrays are marked read-only before caching.
_TRIAL_INDEX_CACHE: dict[tuple, np.ndarray] = {}
_TRIAL_INDEX_CACHE_SIZE = 8


def _field_trial_indices(
    config: CampaignConfig,
    target: NumberFormat,
    bits: tuple[int, ...],
    size: int,
) -> np.ndarray:
    """The ``(bits, trials)`` element-index block of a field's trials.

    Row ``i`` is exactly the index stream ``run_campaign_shard`` draws
    for bit ``bits[i]``: ``default_rng(seed_for_bit).integers(0, size,
    trials)``.
    """
    cache_key = (config.seed, target.nbits, bits, config.trials_per_bit, size)
    cached = _TRIAL_INDEX_CACHE.get(cache_key)
    if cached is not None:
        return cached
    seeds = bit_seeds(config, target)
    indices2d = np.empty((len(bits), config.trials_per_bit), dtype=np.int64)
    for row, bit in enumerate(bits):
        rng = np.random.default_rng(seeds[bit])
        indices2d[row] = rng.integers(0, size, size=config.trials_per_bit)
    indices2d.setflags(write=False)
    _TRIAL_INDEX_CACHE[cache_key] = indices2d
    while len(_TRIAL_INDEX_CACHE) > _TRIAL_INDEX_CACHE_SIZE:
        del _TRIAL_INDEX_CACHE[next(iter(_TRIAL_INDEX_CACHE))]
    return indices2d


def run_field_trials(
    stored_data: np.ndarray,
    target: NumberFormat,
    baseline: SummaryStats,
    config: CampaignConfig | None = None,
) -> TrialRecords:
    """Every bit position's trials for one field in a single batched pass.

    The one-shot form of the campaign inner loop: instead of iterating
    :func:`run_campaign_shard` per bit, the whole ``(bits, trials)``
    block is gathered from the encode-once pipeline and flipped, decoded,
    classified, and scored as whole-array NumPy passes.  The per-bit
    index draws use exactly the per-bit shard streams
    (``default_rng(seed).integers(0, size, trials)`` with the
    :func:`bit_seeds` children), so the slice of the result covering bit
    ``b`` is byte-identical to ``run_campaign_shard``'s records for
    ``b`` — the tests and the trials benchmark assert this through the
    CSV writer.

    ``stored_data`` must already be round-tripped through the target,
    exactly as for :func:`run_campaign_shard`.
    """
    if config is None:
        config = CampaignConfig()
    stored = np.asarray(stored_data).reshape(-1)
    bits = config.resolved_bits(target)
    resolved = config.resolved_fault()
    if resolved.is_default:
        indices2d = _field_trial_indices(config, target, bits, stored.size)
        faults = rngs = spec_label = None
    else:
        # Non-default models may consume the shard RNG after the index
        # draw, so each row keeps its live generator (positioned exactly
        # as run_campaign_shard leaves it) instead of the cached block.
        seeds = bit_seeds(config, target)
        indices2d = np.empty((len(bits), config.trials_per_bit), dtype=np.int64)
        faults, rngs = [], []
        for row, bit in enumerate(bits):
            rng = np.random.default_rng(seeds[bit])
            indices2d[row] = rng.integers(0, stored.size, size=config.trials_per_bit)
            faults.append(resolved.for_bit(bit, target.nbits))
            rngs.append(rng)
        spec_label = resolved.spec
    pipeline = field_pipeline(target, stored)
    telemetry = get_telemetry()
    if not telemetry.enabled:
        return pipeline.run_bits(
            np.asarray(bits, dtype=np.int64), indices2d, baseline,
            faults=faults, rngs=rngs, fault_spec=spec_label,
        )
    with telemetry.span("inject.field"):
        records = pipeline.run_bits(
            np.asarray(bits, dtype=np.int64), indices2d, baseline,
            faults=faults, rngs=rngs, fault_spec=spec_label,
        )
    telemetry.count("inject.trials", indices2d.size)
    return records
