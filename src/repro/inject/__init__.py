"""Fault-injection engine: targets, fault models, campaigns, records."""

from repro.inject.campaign import (
    PAPER_TRIALS_PER_BIT,
    CampaignConfig,
    CampaignResult,
    ConversionReport,
    bit_seeds,
    conversion_report,
    run_campaign,
    run_campaign_shard,
)
from repro.inject.faults import (
    AdjacentBitFlip,
    FaultModel,
    MultiBitFlip,
    RandomBitFlip,
    SingleBitFlip,
    StuckAt,
)
from repro.inject.parallel import run_campaign_parallel
from repro.inject.results import TrialRecords
from repro.inject.suite import SuiteConfig, SuiteResult, load_manifest, run_suite
from repro.inject.validate import VerificationReport, verify_records
from repro.inject.targets import (
    IEEETarget,
    InjectionTarget,
    PositTarget,
    available_targets,
    target_by_name,
)
from repro.inject.trial import SingleTrialResult, run_bit_trials, run_single_trial

__all__ = [
    "AdjacentBitFlip",
    "CampaignConfig",
    "CampaignResult",
    "ConversionReport",
    "FaultModel",
    "IEEETarget",
    "InjectionTarget",
    "MultiBitFlip",
    "PAPER_TRIALS_PER_BIT",
    "PositTarget",
    "RandomBitFlip",
    "SingleBitFlip",
    "SingleTrialResult",
    "StuckAt",
    "SuiteConfig",
    "SuiteResult",
    "TrialRecords",
    "VerificationReport",
    "load_manifest",
    "run_suite",
    "available_targets",
    "verify_records",
    "bit_seeds",
    "conversion_report",
    "run_bit_trials",
    "run_campaign",
    "run_campaign_parallel",
    "run_campaign_shard",
    "run_single_trial",
    "target_by_name",
]
