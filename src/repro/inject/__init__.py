"""Fault-injection engine: formats, fault models, campaigns, records."""

from repro.formats import FixedPositTarget, IEEETarget, NumberFormat, PositTarget
from repro.inject.campaign import (
    PAPER_TRIALS_PER_BIT,
    CampaignConfig,
    CampaignResult,
    ConversionReport,
    bit_seeds,
    conversion_report,
    run_campaign,
    run_campaign_shard,
)
from repro.inject.faults import (
    AdjacentBitFlip,
    FaultModel,
    MultiBitFlip,
    RandomBitFlip,
    SingleBitFlip,
    StuckAt,
)
from repro.inject.results import TrialRecords
from repro.inject.suite import SuiteConfig, SuiteResult, load_manifest, run_suite
from repro.inject.validate import VerificationReport, verify_records
from repro.inject.trial import SingleTrialResult, run_bit_trials, run_single_trial

#: Deprecated compatibility names served lazily from repro.inject.targets
#: so that importing repro.inject stays warning-free.
_DEPRECATED_TARGET_NAMES = ("InjectionTarget", "target_by_name", "available_targets")


def __getattr__(name: str):
    if name in _DEPRECATED_TARGET_NAMES:
        from repro.inject import targets

        return getattr(targets, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AdjacentBitFlip",
    "CampaignConfig",
    "CampaignResult",
    "ConversionReport",
    "FaultModel",
    "FixedPositTarget",
    "IEEETarget",
    "InjectionTarget",
    "MultiBitFlip",
    "NumberFormat",
    "PAPER_TRIALS_PER_BIT",
    "PositTarget",
    "RandomBitFlip",
    "SingleBitFlip",
    "SingleTrialResult",
    "StuckAt",
    "SuiteConfig",
    "SuiteResult",
    "TrialRecords",
    "VerificationReport",
    "load_manifest",
    "run_suite",
    "available_targets",
    "verify_records",
    "bit_seeds",
    "conversion_report",
    "run_bit_trials",
    "run_campaign",
    "run_campaign_shard",
    "run_single_trial",
    "target_by_name",
]
