"""Fault-injection engine: formats, fault models, campaigns, records.

The ``InjectionTarget``/``target_by_name``/``available_targets``
forwarding shims (deprecated since the format registry landed) are
gone: use :func:`repro.formats.resolve`,
:class:`repro.formats.NumberFormat`, and
:func:`repro.formats.available_formats`.
"""

from repro.formats import FixedPositTarget, IEEETarget, NumberFormat, PositTarget
from repro.inject.campaign import (
    PAPER_TRIALS_PER_BIT,
    CampaignConfig,
    CampaignResult,
    ConversionReport,
    bit_seeds,
    conversion_report,
    run_campaign,
    run_campaign_shard,
    run_field_trials,
)
from repro.inject.faults import (
    AdjacentBitFlip,
    BurstBitFlip,
    FaultMasks,
    FaultModel,
    MultiBitFlip,
    RandomBitFlip,
    SingleBitFlip,
    StuckAt,
    apply_masks,
)
from repro.inject.faultspec import (
    DEFAULT_FAULT_SPEC,
    FAULT_GRAMMAR,
    FaultSpecError,
    ResolvedFault,
    canonical_fault_spec,
    registered_fault_examples,
    resolve_fault,
)
from repro.inject.results import TrialRecords
from repro.inject.suite import SuiteConfig, SuiteResult, load_manifest, run_suite
from repro.inject.validate import VerificationReport, verify_records
from repro.inject.trial import (
    FieldPipeline,
    SingleTrialResult,
    field_pipeline,
    run_bit_trials,
    run_single_trial,
)

__all__ = [
    "AdjacentBitFlip",
    "BurstBitFlip",
    "CampaignConfig",
    "CampaignResult",
    "ConversionReport",
    "DEFAULT_FAULT_SPEC",
    "FAULT_GRAMMAR",
    "FaultMasks",
    "FaultModel",
    "FaultSpecError",
    "ResolvedFault",
    "FieldPipeline",
    "FixedPositTarget",
    "IEEETarget",
    "MultiBitFlip",
    "NumberFormat",
    "PAPER_TRIALS_PER_BIT",
    "PositTarget",
    "RandomBitFlip",
    "SingleBitFlip",
    "SingleTrialResult",
    "StuckAt",
    "SuiteConfig",
    "SuiteResult",
    "TrialRecords",
    "VerificationReport",
    "field_pipeline",
    "load_manifest",
    "run_suite",
    "verify_records",
    "apply_masks",
    "bit_seeds",
    "canonical_fault_spec",
    "conversion_report",
    "registered_fault_examples",
    "resolve_fault",
    "run_bit_trials",
    "run_campaign",
    "run_campaign_shard",
    "run_field_trials",
    "run_single_trial",
]
