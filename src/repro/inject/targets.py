"""Injection targets: the number systems faults are injected into.

A target abstracts "how a float32 datum is stored in this number system":
conversion to a bit pattern, conversion of a (possibly corrupted) pattern
back to a float for metric evaluation, and per-bit field classification.
The paper's two targets are 32-bit IEEE-754 and 32-bit posits; the other
widths implement its future-work section.

Note the asymmetric conversion semantics, mirroring the paper's Section
4.1.2: for posits, the datum is first converted float -> posit (rounding
once), the flip happens on the posit pattern, and the faulty pattern is
converted back to float.  The *original* value used for error metrics is
the posit-rounded value, not the raw float — otherwise the posit
conversion error (~1e-5 relative for posit32, as the paper measures)
would contaminate every trial.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.ieee.bits import bits_to_float, float_to_bits
from repro.ieee.fields import IEEEField, field_of_bit
from repro.ieee.formats import BFLOAT16, BINARY16, BINARY32, BINARY64, IEEEFormat
from repro.posit.config import POSIT8, POSIT16, POSIT32, POSIT64, PositConfig
from repro.posit.decode import decode as posit_decode
from repro.posit.encode import encode as posit_encode
from repro.posit.fields import PositField, classify_bit as posit_classify_bit, decompose


class InjectionTarget(abc.ABC):
    """A number system that stores data and can suffer bit flips."""

    #: Short registry name, e.g. ``posit32``.
    name: str
    #: Width of one stored value in bits.
    nbits: int

    @abc.abstractmethod
    def to_bits(self, values) -> np.ndarray:
        """Store float values: returns the bit patterns (unsigned ints)."""

    @abc.abstractmethod
    def from_bits(self, bits) -> np.ndarray:
        """Load bit patterns back into float64 values."""

    @abc.abstractmethod
    def classify_bits(self, bits, bit_index: int) -> np.ndarray:
        """Per-element field id of ``bit_index`` (target-specific enum)."""

    @abc.abstractmethod
    def field_label(self, field_id: int) -> str:
        """Human-readable name of a field id."""

    def regime_sizes(self, bits) -> np.ndarray:
        """Regime size k per element; zeros for systems without a regime."""
        return np.zeros(np.shape(np.asarray(bits)), dtype=np.int64)

    def round_trip(self, values) -> np.ndarray:
        """Store-then-load: the representable value of each input."""
        return self.from_bits(self.to_bits(values))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<InjectionTarget {self.name}>"


class IEEETarget(InjectionTarget):
    """IEEE-754 (or bfloat16) storage."""

    def __init__(self, fmt: IEEEFormat) -> None:
        self.format = fmt
        self.name = {"binary16": "ieee16", "binary32": "ieee32", "binary64": "ieee64"}.get(
            fmt.name, fmt.name
        )
        self.nbits = fmt.nbits

    def to_bits(self, values) -> np.ndarray:
        return float_to_bits(np.asarray(values), self.format)

    def from_bits(self, bits) -> np.ndarray:
        with np.errstate(invalid="ignore"):
            return bits_to_float(bits, self.format).astype(np.float64)

    def classify_bits(self, bits, bit_index: int) -> np.ndarray:
        field = field_of_bit(bit_index, self.format)
        return np.full(np.shape(np.asarray(bits)), int(field), dtype=np.int64)

    def field_label(self, field_id: int) -> str:
        return IEEEField(field_id).name

    @property
    def field_enum(self):
        return IEEEField


class PositTarget(InjectionTarget):
    """Posit storage (float -> posit on store, posit -> float on load)."""

    def __init__(self, config: PositConfig) -> None:
        self.config = config
        self.name = f"posit{config.nbits}" if config.es == 2 else f"posit{config.nbits}es{config.es}"
        self.nbits = config.nbits

    def to_bits(self, values) -> np.ndarray:
        return posit_encode(np.asarray(values, dtype=np.float64), self.config)

    def from_bits(self, bits) -> np.ndarray:
        return np.asarray(posit_decode(bits, self.config), dtype=np.float64)

    def classify_bits(self, bits, bit_index: int) -> np.ndarray:
        return posit_classify_bit(bits, bit_index, self.config)

    def field_label(self, field_id: int) -> str:
        return PositField(field_id).name

    def regime_sizes(self, bits) -> np.ndarray:
        return decompose(bits, self.config).run

    @property
    def field_enum(self):
        return PositField


_TARGETS: dict[str, InjectionTarget] = {}


def _register_defaults() -> None:
    for fmt in (BINARY16, BINARY32, BINARY64):
        target = IEEETarget(fmt)
        _TARGETS[target.name] = target
    _TARGETS["bfloat16"] = IEEETarget(BFLOAT16)
    for config in (POSIT8, POSIT16, POSIT32, POSIT64):
        target = PositTarget(config)
        _TARGETS[target.name] = target


_register_defaults()


def target_by_name(name: str) -> InjectionTarget:
    """Look up a target: ieee16/32/64, bfloat16, posit8/16/32/64."""
    try:
        return _TARGETS[name.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(_TARGETS))
        raise KeyError(f"unknown injection target {name!r}; known: {known}") from None


def available_targets() -> list[str]:
    """All registered target names, sorted."""
    return sorted(_TARGETS)
