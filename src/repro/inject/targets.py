"""Deprecated injection-target aliases over :mod:`repro.formats`.

The "injection target" abstraction — how a float datum is stored in a
number system — lives in the unified format stack: resolve specs with
:func:`repro.formats.resolve` and annotate with
:class:`repro.formats.NumberFormat`.  This module survives only so
historical callers and pickled campaign metadata keep working; every
name here warns and forwards.

Migration map::

    target_by_name(spec)   -> repro.formats.resolve(spec)
    InjectionTarget        -> repro.formats.NumberFormat
    available_targets()    -> repro.formats.available_formats()

Note the asymmetric conversion semantics live with the formats now
(paper Section 4.1.2): for posits the datum is converted float -> posit
(rounding once), the flip happens on the posit pattern, and the faulty
pattern converts back to float; error metrics compare against the
posit-rounded value so conversion error never contaminates trials.
"""

from __future__ import annotations

import warnings

from repro.formats import (
    FixedPositTarget,
    FormatSpecError,
    IEEETarget,
    NumberFormat,
    PositTarget,
    available_formats,
    resolve,
)


def _deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.inject.targets.{name} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def target_by_name(name: str) -> NumberFormat:
    """Deprecated: use :func:`repro.formats.resolve`.

    Kept for compatibility, including its historical ``KeyError``
    contract for unresolvable names (``resolve`` raises
    :class:`~repro.formats.FormatSpecError` instead).
    """
    _deprecated("target_by_name", "repro.formats.resolve")
    try:
        return resolve(name)
    except (FormatSpecError, ValueError) as error:
        known = ", ".join(available_formats())
        raise KeyError(
            f"unknown injection target {name!r} ({error}); known: {known}; "
            "or any spec like posit<N>es<E>, binary(<E>,<F>), "
            "fixedposit(<N>,es=<E>,r=<R>)"
        ) from None


def available_targets() -> list[str]:
    """Deprecated: use :func:`repro.formats.available_formats`."""
    _deprecated("available_targets", "repro.formats.available_formats")
    return available_formats()


def __getattr__(name: str):
    if name == "InjectionTarget":
        warnings.warn(
            "repro.inject.targets.InjectionTarget is deprecated; use "
            "repro.formats.NumberFormat",
            DeprecationWarning,
            stacklevel=2,
        )
        return NumberFormat
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FixedPositTarget",
    "IEEETarget",
    "InjectionTarget",
    "PositTarget",
    "available_targets",
    "target_by_name",
]
