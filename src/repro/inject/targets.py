"""Injection targets: thin compatibility layer over :mod:`repro.formats`.

A target abstracts "how a float32 datum is stored in this number
system"; that abstraction now lives in the unified format stack
(:class:`repro.formats.NumberFormat`), where any parameterized format —
``posit16es1``, ``binary(8,23)``, ``fixedposit(32,es=2,r=5)`` — resolves
by spec string and is served by a pluggable codec backend (``direct``
or LUT-accelerated for narrow widths).  This module keeps the
historical injection-engine names as aliases so existing callers and
pickled campaign metadata keep working.

Note the asymmetric conversion semantics, mirroring the paper's Section
4.1.2: for posits, the datum is first converted float -> posit (rounding
once), the flip happens on the posit pattern, and the faulty pattern is
converted back to float.  The *original* value used for error metrics is
the posit-rounded value, not the raw float — otherwise the posit
conversion error (~1e-5 relative for posit32, as the paper measures)
would contaminate every trial.
"""

from __future__ import annotations

from repro.formats import (
    FixedPositTarget,
    FormatSpecError,
    IEEETarget,
    NumberFormat,
    PositTarget,
    available_formats,
    get_format,
)

#: The protocol formerly defined here; every format satisfies it.
InjectionTarget = NumberFormat


def target_by_name(name: str) -> InjectionTarget:
    """Look up a target by registry name or format spec string.

    Accepts everything :func:`repro.formats.get_format` does —
    ``posit32``, ``posit16es1``, ``binary(8,23)``, ``bfloat16``,
    ``fixedposit(32,es=2,r=5)`` — and raises ``KeyError`` (the
    engine's historical contract) for anything unresolvable.
    """
    try:
        return get_format(name)
    except (FormatSpecError, ValueError) as error:
        known = ", ".join(available_formats())
        raise KeyError(
            f"unknown injection target {name!r} ({error}); known: {known}; "
            "or any spec like posit<N>es<E>, binary(<E>,<F>), "
            "fixedposit(<N>,es=<E>,r=<R>)"
        ) from None


def available_targets() -> list[str]:
    """All registered target names, sorted."""
    return available_formats()


__all__ = [
    "FixedPositTarget",
    "IEEETarget",
    "InjectionTarget",
    "PositTarget",
    "available_targets",
    "target_by_name",
]
