"""Parallel campaign execution.

The paper runs per-field campaigns "in parallel across different compute
nodes in a cluster" (MPI-style scatter of independent work).  Without a
cluster, the same structure maps onto a process pool: the unit of work is
one bit position's shard of trials, seeds are pre-spawned per bit (so the
parallel result is bit-identical to the serial one, regardless of worker
count or scheduling), and shards are gathered and concatenated at the
end — the scatter/gather idiom from the mpi4py guide, minus MPI.

The dataset is shared with workers through a module-global installed by
the pool initializer, avoiding a per-task pickle of the array.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np

from repro.inject.campaign import (
    CampaignConfig,
    CampaignResult,
    bit_seeds,
    conversion_report,
    run_campaign_shard,
)
from repro.inject.results import TrialRecords
from repro.inject.targets import InjectionTarget, target_by_name
from repro.metrics.summary import SummaryStats

_WORKER_STATE: dict = {}


def _init_worker(stored_data: np.ndarray, target_spec: str, baseline: SummaryStats) -> None:
    # Targets cross the pool boundary as spec strings, not pickles:
    # every format's name is a valid spec (posit16es1, binary(8,23),
    # fixedposit(32,es=2,r=5), ...), so arbitrary parameterized formats
    # rehydrate in workers — and each worker rebuilds its own codec
    # tables instead of shipping them.
    _WORKER_STATE["data"] = stored_data
    _WORKER_STATE["target"] = target_by_name(target_spec)
    _WORKER_STATE["baseline"] = baseline


def _run_shard(args: tuple[int, int, np.random.SeedSequence]) -> TrialRecords:
    bit, trials, seed = args
    return run_campaign_shard(
        _WORKER_STATE["data"],
        _WORKER_STATE["target"],
        bit,
        trials,
        seed,
        _WORKER_STATE["baseline"],
    )


def default_worker_count(shard_count: int | None = None) -> int:
    """Workers to use when unspecified: CPUs, capped at the shard count.

    ``shard_count`` is the number of shards actually scheduled; when
    given, the result never exceeds it (extra workers would only sit
    idle after paying the fork cost).
    """
    workers = max(os.cpu_count() or 1, 1)
    if shard_count is not None:
        workers = min(workers, max(shard_count, 1))
    return workers


def run_campaign_parallel(
    data,
    target: InjectionTarget | str,
    config: CampaignConfig | None = None,
    label: str = "",
    workers: int | None = None,
) -> CampaignResult:
    """Parallel equivalent of :func:`repro.inject.campaign.run_campaign`.

    Produces bit-identical records (same seeds, same order).  Falls back
    to the serial path when only one worker is requested or only one
    shard exists.
    """
    if isinstance(target, str):
        target = target_by_name(target)
    if config is None:
        config = CampaignConfig()

    flat = np.asarray(data).reshape(-1)
    if flat.size == 0:
        raise ValueError("cannot run a campaign on an empty dataset")

    stored = target.round_trip(flat)
    baseline = SummaryStats.from_array(stored)
    conversion = conversion_report(flat, target)

    seeds = bit_seeds(config, target)
    tasks = [(bit, config.trials_per_bit, seed) for bit, seed in seeds.items()]

    if workers is None:
        workers = default_worker_count(len(tasks))
    workers = max(workers, 1)

    if workers == 1 or len(tasks) <= 1:
        shards = [
            run_campaign_shard(stored, target, bit, trials, seed, baseline)
            for bit, trials, seed in tasks
        ]
    else:
        context = multiprocessing.get_context("fork")
        with context.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(stored, target.name, baseline),
        ) as pool:
            shards = pool.map(_run_shard, tasks)

    records = TrialRecords.concatenate(shards)
    return CampaignResult(
        target_name=target.name,
        config=config,
        baseline=baseline,
        records=records,
        conversion=conversion,
        data_size=int(flat.size),
        label=label,
    )
