"""Worker-pool plumbing for parallel campaign execution.

The paper runs per-field campaigns "in parallel across different compute
nodes in a cluster" (MPI-style scatter of independent work).  Without a
cluster, the same structure maps onto a process pool: the unit of work
is one bit position's shard of trials, seeds are pre-spawned per bit (so
the parallel result is bit-identical to the serial one, regardless of
worker count or scheduling), and shards are gathered and concatenated in
bit order.

The public entry point moved to the unified
:func:`repro.inject.campaign.run_campaign` (``jobs=N``), executed by
:class:`repro.runner.CampaignRunner` through its
:class:`repro.runner.executors.PoolExecutor`; this module keeps what the
pool needs — the fork initializer that shares the dataset with workers
through a module global (avoiding a per-task pickle of the array),
spec-string target rehydration, and worker-count resolution.  (The
long-deprecated ``run_campaign_parallel`` wrapper has been removed; call
``run_campaign(..., jobs=N)``.)
"""

from __future__ import annotations

import os
import signal
import time
import warnings

import numpy as np

from repro.formats import resolve
from repro.inject.campaign import run_campaign_shard
from repro.inject.results import TrialRecords
from repro.metrics.summary import SummaryStats
from repro.telemetry import DISABLED, Telemetry, TelemetrySnapshot, telemetry_scope
from repro.telemetry.core import _reset_process_stack

_WORKER_STATE: dict = {}


def _init_worker(
    stored_data: np.ndarray,
    target_spec: str,
    baseline: SummaryStats,
    telemetry_enabled: bool = False,
    chaos=None,
    heartbeat=None,
    fault_spec: str = "single",
    app=None,
) -> None:
    # Targets cross the pool boundary as spec strings, not pickles:
    # every format's name is a valid spec (posit16es1, binary(8,23),
    # fixedposit(32,es=2,r=5), ...), so arbitrary parameterized formats
    # rehydrate in workers — and each worker rebuilds its own codec
    # tables instead of shipping them.
    _WORKER_STATE["data"] = stored_data
    _WORKER_STATE["target"] = resolve(target_spec)
    _WORKER_STATE["baseline"] = baseline
    _WORKER_STATE["telemetry"] = bool(telemetry_enabled)
    # Chaos fault plan (repro.chaos.FaultPlan) and the heartbeat queue:
    # workers announce claiming/finishing a shard so the parent can tell
    # a hung or dead worker from a queued task and kill + requeue it.
    _WORKER_STATE["chaos"] = chaos
    _WORKER_STATE["heartbeat"] = heartbeat
    # Fault-model spec crosses the boundary as its canonical string, same
    # as the target: resolved per shard in run_campaign_shard.
    _WORKER_STATE["fault"] = fault_spec
    # App-campaign config (repro.apps.campaign.AppCampaignConfig) when
    # shards are (iteration, bit) solver cells; None for value campaigns.
    _WORKER_STATE["app"] = app
    # The fork copied the parent's SIGTERM handler (the runner converts
    # SIGTERM to a checkpointing interrupt); in a worker that handler
    # would make Pool.terminate() raise instead of exit and the shutdown
    # would deadlock.  Workers die on SIGTERM like normal processes.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    # The fork inherited the parent's active collector; recording into it
    # from this process would be silently lost.  Profiled shards collect
    # into a per-task collector in _run_shard_timed and ship snapshots.
    _reset_process_stack(DISABLED)


def _unpack_task(args) -> tuple[int, int, np.random.SeedSequence, int]:
    """Task args with the 0-based attempt (legacy 3-tuples mean attempt 0)."""
    if len(args) == 3:
        bit, trials, seed = args
        return bit, trials, seed, 0
    return args


def _ping(kind: str, bit: int, attempt: int) -> None:
    """Best-effort heartbeat; a dying queue must not fail the shard.

    The queue is a ``SimpleQueue``, so ``put`` writes the pipe before
    returning — a worker that crashes immediately after claiming has
    still told the parent which shard it took.
    """
    heartbeat = _WORKER_STATE.get("heartbeat")
    if heartbeat is None:
        return
    try:
        heartbeat.put((kind, os.getpid(), bit, attempt))
    except Exception:
        pass


def _run_shard(args) -> TrialRecords:
    bit, trials, seed, _attempt = _unpack_task(args)
    app = _WORKER_STATE.get("app")
    if app is not None:
        from repro.apps.campaign import run_app_shard

        return run_app_shard(app, _WORKER_STATE["target"], bit, trials, seed)
    return run_campaign_shard(
        _WORKER_STATE["data"],
        _WORKER_STATE["target"],
        bit,
        trials,
        seed,
        _WORKER_STATE["baseline"],
        fault_spec=_WORKER_STATE.get("fault", "single"),
    )


def _run_shard_timed(args) -> tuple[TrialRecords, float, TelemetrySnapshot | None]:
    """Pool task: a shard, its compute time, and its telemetry delta.

    When the runner profiles, each task records into a private collector
    and ships the frozen snapshot back with the records; the runner
    merges the deltas shard by shard (same discipline as the streaming
    metric accumulators), so the reduced totals are identical to a
    serial run regardless of worker count or scheduling.

    Heartbeats: the task pings "claim" before computing and "done" after,
    so the parent can distinguish a queued task (no claim yet — never
    timed out) from a claimed one whose worker crashed or hung (claim
    then silence — killed and requeued).  Chaos compute faults fire
    after the claim ping, so even an injected crash leaves the trace a
    real one would.
    """
    bit, trials, seed, attempt = _unpack_task(args)
    _ping("claim", bit, attempt)
    plan = _WORKER_STATE.get("chaos")
    if plan is not None:
        from repro.chaos import fire_compute_faults

        fire_compute_faults(plan, bit, attempt)
    start = time.perf_counter()
    if _WORKER_STATE.get("telemetry"):
        collector = Telemetry()
        with telemetry_scope(collector):
            records = _run_shard(args)
        snapshot = collector.snapshot()
    else:
        records = _run_shard(args)
        snapshot = None
    elapsed = time.perf_counter() - start
    _ping("done", bit, attempt)
    return records, elapsed, snapshot


def default_worker_count(shard_count: int | None = None) -> int:
    """Workers to use when unspecified: CPUs, capped at the shard count.

    ``shard_count`` is the number of shards actually scheduled; when
    given, the result never exceeds it (extra workers would only sit
    idle after paying the fork cost).
    """
    workers = max(os.cpu_count() or 1, 1)
    if shard_count is not None:
        workers = min(workers, max(shard_count, 1))
    return workers


def validate_jobs(jobs: int | None) -> int | None:
    """Reject nonsensical worker counts early.

    ``None`` means "auto" and passes through; anything else must be a
    positive integer (booleans and floats are rejected too — a silent
    ``jobs=True`` is a bug, not a request for one worker).
    """
    if jobs is None:
        return None
    if isinstance(jobs, bool) or not isinstance(jobs, (int, np.integer)):
        raise ValueError(f"jobs must be a positive integer or None, got {jobs!r}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return int(jobs)


def resolve_worker_count(jobs: int | None, shard_count: int | None = None) -> int:
    """Concrete worker count for a run: validate, auto-size, cap.

    ``None`` auto-sizes via :func:`default_worker_count`; an explicit
    request above the shard count is capped (with a warning) instead of
    silently forking idle workers.
    """
    jobs = validate_jobs(jobs)
    if jobs is None:
        return default_worker_count(shard_count)
    if shard_count is not None and jobs > max(shard_count, 1):
        capped = max(shard_count, 1)
        warnings.warn(
            f"jobs={jobs} exceeds the {shard_count} scheduled shard(s); "
            f"capping at {capped}",
            RuntimeWarning,
            stacklevel=2,
        )
        return capped
    return jobs
