"""The fault-model spec grammar: every fault model round-trips through a string.

A *fault spec* is a short string naming a (possibly parameterized) fault
model, mirroring the format spec grammar in :mod:`repro.formats.spec`.
Canonical specs double as campaign identity: they are stored in the run
manifest, stamped into shard CSVs, and rehydrated on the far side of a
process pool — so a campaign swept over fault models carries its model
the same way it carries its number format.

Grammar (case-insensitive, whitespace ignored)::

    single              the paper's model: flip the shard's bit   single
    adjacent(<k>)       flip k adjacent bits anchored at the
                        shard's bit (multi-bit upset)             adjacent(2)
    random(<k>)         flip k uniformly random distinct bits
                        per trial (shard bit = label only)        random(2)
    burst(<k>,<p>)      flip the shard's bit, then each of the
                        next k-1 bits independently with
                        probability p (DRAM burst model)          burst(4,0.5)
    stuckat(<pos>,<v>)  force bit <pos> to <v> in every trial
                        (hard fault; shard bit = label only)      stuckat(31,1)

``resolve_fault`` returns a :class:`ResolvedFault` whose ``for_bit``
factory builds the concrete :class:`~repro.inject.faults.FaultModel`
for one shard — ``single`` and ``adjacent`` are anchored at the shard's
bit position, ``random``/``burst``/``stuckat`` carry their own
parameters.  ``adjacent`` bursts that run past the top bit clip to the
word, exactly as :class:`~repro.inject.faults.AdjacentBitFlip` does.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.inject.faults import (
    AdjacentBitFlip,
    BurstBitFlip,
    FaultModel,
    RandomBitFlip,
    SingleBitFlip,
    StuckAt,
)

#: The default model: what every pre-existing campaign ran.
DEFAULT_FAULT_SPEC = "single"


class FaultSpecError(ValueError):
    """A fault spec that does not parse or describes an invalid model."""


_ADJACENT = re.compile(r"^adjacent\((-?\d+)\)$")
_RANDOM = re.compile(r"^random\((-?\d+)\)$")
_BURST = re.compile(r"^burst\((-?\d+),(-?\d+(?:\.\d+)?)\)$")
_STUCKAT = re.compile(r"^stuckat\((-?\d+),(-?\d+)\)$")

#: spec -> (summary, canonical example); drives docs, CLI help, and the
#: conformance sweep over "one of each" registered model.
FAULT_GRAMMAR: dict[str, tuple[str, str]] = {
    "single": ("flip the shard's bit (the paper's model)", "single"),
    "adjacent(<k>)": ("flip k>=2 adjacent bits anchored at the shard's bit", "adjacent(2)"),
    "random(<k>)": ("flip k>=1 uniformly random distinct bits per trial", "random(2)"),
    "burst(<k>,<p>)": (
        "flip the shard's bit, then each of the next k-1 bits with probability p",
        "burst(4,0.5)",
    ),
    "stuckat(<pos>,<v>)": ("force bit <pos> to <v> (0 or 1) in every trial", "stuckat(31,1)"),
}


def _grammar_summary() -> str:
    return ", ".join(FAULT_GRAMMAR)


def _examples() -> str:
    return ", ".join(example for _, example in FAULT_GRAMMAR.values())


@dataclass(frozen=True)
class ResolvedFault:
    """A parsed fault spec: canonical name plus a per-shard factory.

    Attributes
    ----------
    spec:
        The canonical spec string (round-trips through
        :func:`resolve_fault`); this is what manifests and CSVs store.
    kind:
        The grammar production (``single``, ``adjacent``, ...).
    flips:
        Whether mask application is XOR-involutive (flip models) as
        opposed to idempotent (stuck-at).
    uses_rng:
        Whether building a trial's mask consumes the shard RNG stream.
    width:
        Upper bound on bits touched per trial (1 for ``single``).
    anchored:
        Whether the model is parameterized by the shard's bit position
        (``single``/``adjacent``/``burst``) or fixed across shards.
    """

    spec: str
    kind: str
    flips: bool
    uses_rng: bool
    width: int
    anchored: bool

    @property
    def is_default(self) -> bool:
        return self.spec == DEFAULT_FAULT_SPEC

    def for_bit(self, bit: int, nbits: int) -> FaultModel:
        """The concrete model for the shard flipping ``bit`` of ``nbits``."""
        if not 0 <= bit < nbits:
            raise FaultSpecError(f"bit {bit} out of range for an {nbits}-bit format")
        if self.kind == "single":
            return SingleBitFlip(bit)
        if self.kind == "adjacent":
            return AdjacentBitFlip(bit, self.width)
        if self.kind == "random":
            if self.width > nbits:
                raise FaultSpecError(
                    f"fault spec {self.spec!r} flips {self.width} distinct bits but the "
                    f"format has only {nbits}; use random(k) with k <= {nbits}"
                )
            return RandomBitFlip(self.width)
        if self.kind == "burst":
            return BurstBitFlip(bit, self.width, self._prob)
        # stuckat
        if self._pos >= nbits:
            raise FaultSpecError(
                f"fault spec {self.spec!r} targets bit {self._pos} but the format has "
                f"only {nbits} bits (positions 0..{nbits - 1}); try stuckat({nbits - 1},1)"
            )
        return StuckAt(self._pos, self._value)

    def support(self, bit: int, nbits: int) -> tuple[int, ...]:
        """Every position the model may touch for the shard at ``bit``.

        The *support* drives protection replay
        (:mod:`repro.analysis.faultsweep`): a scheme is only guaranteed
        to neutralize a trial when its coverage relates to all positions
        the model could have flipped, not just the anchor bit recorded
        in the shard CSV.  ``random`` touches the whole word.
        """
        if self.kind == "single":
            return (bit,)
        if self.kind in ("adjacent", "burst"):
            return tuple(range(bit, min(bit + self.width, nbits)))
        if self.kind == "random":
            return tuple(range(nbits))
        return (self._pos,)  # stuckat

    def odd_flips_guaranteed(self, bit: int, nbits: int) -> bool:
        """Whether every error-producing trial flips an odd bit count.

        Parity detection sees only the XOR of the covered positions, so
        an even number of covered flips is invisible.  ``single`` and
        ``stuckat`` change at most one bit (a zero-change stuck-at trial
        carries zero error, so among error-producing trials the count is
        exactly one); ``adjacent``/``random`` flip a fixed count;
        ``burst`` flips a random count and guarantees nothing beyond its
        anchor.
        """
        if self.kind in ("single", "stuckat"):
            return True
        if self.kind == "adjacent":
            return (min(bit + self.width, nbits) - bit) % 2 == 1
        if self.kind == "random":
            return self.width % 2 == 1
        # burst: only the anchor is certain; further flips are Bernoulli.
        return min(bit + self.width, nbits) - bit == 1

    # stuckat/burst parameters, parsed out of the canonical spec so the
    # dataclass stays hashable on (spec, kind, ...) alone.
    @property
    def _prob(self) -> float:
        return float(self.spec.partition(",")[2].rstrip(")"))

    @property
    def _pos(self) -> int:
        return int(self.spec.partition("(")[2].partition(",")[0])

    @property
    def _value(self) -> int:
        return int(self.spec.partition(",")[2].rstrip(")"))


def normalize_fault_spec(spec: str) -> str:
    """Lowercase and strip all whitespace (the grammar ignores both)."""
    return re.sub(r"\s+", "", str(spec).lower())


def resolve_fault(spec: str) -> ResolvedFault:
    """Parse a fault spec into a :class:`ResolvedFault`.

    Raises :class:`FaultSpecError` for strings outside the grammar and
    for grammatical specs with invalid parameters, naming the spec, the
    failing constraint, and valid examples — mirroring the format spec
    error style.
    """
    text = normalize_fault_spec(spec)

    if text == "single":
        return ResolvedFault(
            spec="single", kind="single", flips=True, uses_rng=False, width=1, anchored=True
        )

    match = _ADJACENT.match(text)
    if match:
        count = int(match.group(1))
        if count < 2:
            raise FaultSpecError(
                f"fault spec {spec!r} invalid: adjacent(<k>) needs k >= 2 "
                f"(a 1-bit 'burst' is spelled 'single'); valid examples: adjacent(2), adjacent(3)"
            )
        return ResolvedFault(
            spec=f"adjacent({count})",
            kind="adjacent",
            flips=True,
            uses_rng=False,
            width=count,
            anchored=True,
        )

    match = _RANDOM.match(text)
    if match:
        count = int(match.group(1))
        if count < 1:
            raise FaultSpecError(
                f"fault spec {spec!r} invalid: random(<k>) needs k >= 1; "
                f"valid examples: random(1), random(2)"
            )
        return ResolvedFault(
            spec=f"random({count})",
            kind="random",
            flips=True,
            uses_rng=True,
            width=count,
            anchored=False,
        )

    match = _BURST.match(text)
    if match:
        length = int(match.group(1))
        prob = float(match.group(2))
        if length < 2:
            raise FaultSpecError(
                f"fault spec {spec!r} invalid: burst(<k>,<p>) needs k >= 2 "
                f"(a 1-bit burst is spelled 'single'); valid examples: burst(2,0.5), burst(4,0.25)"
            )
        if not 0.0 < prob <= 1.0:
            raise FaultSpecError(
                f"fault spec {spec!r} invalid: burst probability must satisfy 0 < p <= 1; "
                f"valid examples: burst(4,0.5), burst(3,1.0)"
            )
        canonical = f"burst({length},{format(prob, 'g')})"
        return ResolvedFault(
            spec=canonical, kind="burst", flips=True, uses_rng=True, width=length, anchored=True
        )

    match = _STUCKAT.match(text)
    if match:
        pos = int(match.group(1))
        value = int(match.group(2))
        if pos < 0:
            raise FaultSpecError(
                f"fault spec {spec!r} invalid: stuck-at position must be >= 0 "
                f"(LSB is bit 0); valid examples: stuckat(0,1), stuckat(31,0)"
            )
        if value not in (0, 1):
            raise FaultSpecError(
                f"fault spec {spec!r} invalid: stuck-at value must be 0 or 1; "
                f"valid examples: stuckat(31,1), stuckat(7,0)"
            )
        return ResolvedFault(
            spec=f"stuckat({pos},{value})",
            kind="stuckat",
            flips=False,
            uses_rng=False,
            width=1,
            anchored=False,
        )

    raise FaultSpecError(
        f"fault spec {spec!r} does not match the fault grammar "
        f"({_grammar_summary()}); valid examples: {_examples()}"
    )


def canonical_fault_spec(spec: str) -> str:
    """The canonical spec a fault string resolves to (parses it fully)."""
    return resolve_fault(spec).spec


def registered_fault_examples() -> tuple[str, ...]:
    """One canonical example spec per grammar production (for sweeps)."""
    return tuple(example for _, example in FAULT_GRAMMAR.values())
