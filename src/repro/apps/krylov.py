"""Conjugate gradient with stored state — the fragile contrast to Jacobi.

Elliott, Hoemmen & Mueller (cited in the paper's related work) studied
SDC in Krylov solvers: unlike a stationary sweep, a Krylov method builds
an orthogonal basis incrementally, so a corrupted vector *propagates*
through every later iteration instead of being smoothed away.  This CG
implementation stores its vectors in a chosen number system (write-
through like the Jacobi solver) and accepts the same fault hook, letting
the examples and experiments compare self-healing (Jacobi) against
history-dependent (CG) behaviour under the paper's flip model.

A flip in the solution vector exposes the classic hazard exactly: CG's
residual recurrence ``r <- r - alpha A p`` never re-reads ``x``, so the
solver keeps "converging" on schedule while the corruption sits in the
answer — **silent** data corruption, where Jacobi (which recomputes its
state from neighbors each sweep) smooths the same flip away.

The operator is the same 2-D Poisson matrix the Jacobi solver uses, so
the two methods solve identical systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.stencil import PoissonProblem
from repro.formats import NumberFormat, resolve


def poisson_matvec(state: np.ndarray, grid: int, spacing: float) -> np.ndarray:
    """y = A x for the 5-point Laplacian with zero Dirichlet boundary."""
    square = state.reshape(grid, grid)
    padded = np.pad(square, 1)
    neighbors = (
        padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2] + padded[1:-1, 2:]
    )
    return ((4.0 * square - neighbors) / spacing**2).reshape(-1)


@dataclass
class CGResult:
    """Outcome of a conjugate-gradient solve."""

    solution: np.ndarray
    iterations: int
    residual_norms: list[float] = field(default_factory=list)
    converged: bool = False
    diverged: bool = False

    def error_vs(self, reference: np.ndarray) -> float:
        diff = self.solution.reshape(-1) - reference.reshape(-1)
        denominator = float(np.linalg.norm(reference))
        if denominator == 0:
            return float(np.linalg.norm(diff))
        return float(np.linalg.norm(diff) / denominator)


def cg_solve(
    problem: PoissonProblem,
    target: NumberFormat | str | None = None,
    max_iterations: int = 500,
    tolerance: float = 1e-8,
    fault_hook=None,
    rhs: np.ndarray | None = None,
) -> CGResult:
    """Conjugate gradient on the Poisson problem with stored vectors.

    Parameters
    ----------
    target:
        Number system the solution/residual/direction vectors are stored
        in between iterations (None = float64 throughout).
    fault_hook:
        ``hook(iteration, x) -> x`` applied to the solution vector after
        each update — the same contract as the Jacobi solver, so the
        fault harness drives both.
    rhs:
        Forcing term; default :meth:`PoissonProblem.point_source_rhs`
        (the smooth sine rhs is an eigenvector, which CG solves in one
        step — fine for accuracy checks, useless for iteration studies).
    """
    if isinstance(target, str):
        target = resolve(target)

    def store(vector: np.ndarray) -> np.ndarray:
        if target is None:
            return vector
        return target.round_trip(vector)

    grid = problem.grid
    spacing = problem.spacing
    if rhs is None:
        rhs = problem.point_source_rhs()
    rhs = np.asarray(rhs, dtype=np.float64).reshape(-1)
    rhs_norm = float(np.linalg.norm(rhs))

    x = store(np.zeros(grid * grid))
    r = store(rhs - poisson_matvec(x, grid, spacing))
    p = r.copy()
    rs_old = float(np.dot(r, r))

    result = CGResult(solution=x, iterations=0)
    for iteration in range(1, max_iterations + 1):
        ap = poisson_matvec(p, grid, spacing)
        pap = float(np.dot(p, ap))
        if pap == 0 or not np.isfinite(pap):
            result.diverged = not np.isfinite(pap)
            break
        alpha = rs_old / pap
        x = store(x + alpha * p)
        if fault_hook is not None:
            x = fault_hook(iteration, x.reshape(grid, grid)).reshape(-1)
        r = store(r - alpha * ap)
        rs_new = float(np.dot(r, r))
        residual_norm = float(np.sqrt(rs_new))
        result.residual_norms.append(residual_norm)
        result.iterations = iteration
        if not np.isfinite(residual_norm):
            result.diverged = True
            break
        if residual_norm <= tolerance * rhs_norm:
            result.converged = True
            break
        p = store(r + (rs_new / rs_old) * p)
        rs_old = rs_new
    result.solution = x
    return result


def cg_fault_outcome(
    problem: PoissonProblem,
    target: NumberFormat | str,
    iteration: int,
    flat_index: int,
    bit: int,
    max_iterations: int = 500,
    tolerance: float = 1e-8,
) -> dict:
    """Clean-vs-faulty CG comparison for one injected flip.

    Returns {clean_iterations, faulty_iterations, converged, diverged,
    solution_error, iteration_overhead}.
    """
    if isinstance(target, str):
        target = resolve(target)

    def hook(i: int, state: np.ndarray) -> np.ndarray:
        if i != iteration:
            return state
        flat = state.reshape(-1).copy()
        bits = target.to_bits(flat[flat_index : flat_index + 1])
        flat[flat_index] = target.from_bits(bits ^ bits.dtype.type(1 << bit))[0]
        return flat.reshape(state.shape)

    clean = cg_solve(problem, target, max_iterations, tolerance)
    faulty = cg_solve(problem, target, max_iterations, tolerance, fault_hook=hook)
    return {
        "clean_iterations": clean.iterations,
        "faulty_iterations": faulty.iterations,
        "converged": faulty.converged,
        "diverged": faulty.diverged,
        "solution_error": faulty.error_vs(clean.solution),
        "iteration_overhead": faulty.iterations - clean.iterations,
    }
