"""Jacobi 2-D Poisson solver with configurable value storage.

The paper motivates its study with HPC applications whose state lives in
floating-point memory; prior work it cites (Elliott et al., Casas et al.)
injects faults into iterative solvers.  This module provides that
workload: a Jacobi iteration on the unit square whose state vector is
*stored* in a chosen number system (every sweep writes through
``target.round_trip``, modelling state kept in posit/IEEE memory), so the
storage format's accuracy and resiliency both become observable at the
application level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats import NumberFormat, resolve


@dataclass(frozen=True)
class PoissonProblem:
    """-Laplace(u) = f on the unit square, zero Dirichlet boundary."""

    grid: int = 32

    def __post_init__(self) -> None:
        if self.grid < 3:
            raise ValueError(f"grid must be at least 3, got {self.grid}")

    @property
    def spacing(self) -> float:
        return 1.0 / (self.grid + 1)

    def rhs(self) -> np.ndarray:
        """A smooth forcing term: f(x, y) = 2 pi^2 sin(pi x) sin(pi y)."""
        coords = np.linspace(self.spacing, 1.0 - self.spacing, self.grid)
        x, y = np.meshgrid(coords, coords, indexing="ij")
        return 2.0 * np.pi**2 * np.sin(np.pi * x) * np.sin(np.pi * y)

    def exact_solution(self) -> np.ndarray:
        """u(x, y) = sin(pi x) sin(pi y) solves the problem exactly."""
        coords = np.linspace(self.spacing, 1.0 - self.spacing, self.grid)
        x, y = np.meshgrid(coords, coords, indexing="ij")
        return np.sin(np.pi * x) * np.sin(np.pi * y)

    def point_source_rhs(self) -> np.ndarray:
        """A localized off-center source.

        The smooth :meth:`rhs` is (a sample of) an eigenvector of the
        discrete Laplacian, which Krylov methods solve in one step; the
        point source excites the full spectrum and produces a realistic
        iteration count.
        """
        rhs = np.zeros((self.grid, self.grid))
        rhs[self.grid // 3, (2 * self.grid) // 3] = 1.0 / self.spacing**2
        return rhs


@dataclass
class SolveResult:
    """Outcome of a Jacobi solve."""

    solution: np.ndarray
    iterations: int
    residuals: list[float] = field(default_factory=list)
    converged: bool = False
    diverged: bool = False

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("inf")

    def error_vs(self, reference: np.ndarray) -> float:
        """Relative L2 error against a reference solution."""
        diff = self.solution - reference
        denominator = float(np.linalg.norm(reference))
        if denominator == 0:
            return float(np.linalg.norm(diff))
        return float(np.linalg.norm(diff) / denominator)


def _jacobi_sweep(state: np.ndarray, rhs_h2: np.ndarray) -> np.ndarray:
    """One Jacobi update with zero Dirichlet boundaries."""
    padded = np.pad(state, 1)
    neighbors = (
        padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2] + padded[1:-1, 2:]
    )
    return 0.25 * (neighbors + rhs_h2)


def jacobi_solve(
    problem: PoissonProblem,
    target: NumberFormat | str | None = None,
    max_iterations: int = 2000,
    tolerance: float = 1e-6,
    fault_hook=None,
) -> SolveResult:
    """Solve the Poisson problem by Jacobi iteration.

    Parameters
    ----------
    target:
        Number system the state is stored in between sweeps (None keeps
        float64 throughout — the exact baseline).
    fault_hook:
        Optional ``hook(iteration, state) -> state`` called after every
        sweep; the fault-injection harness uses it to corrupt one value.
    """
    if isinstance(target, str):
        target = resolve(target)
    rhs_h2 = problem.rhs() * problem.spacing**2
    state = np.zeros((problem.grid, problem.grid))
    if target is not None:
        state = target.round_trip(state).reshape(state.shape)

    result = SolveResult(solution=state, iterations=0)
    for iteration in range(1, max_iterations + 1):
        updated = _jacobi_sweep(state, rhs_h2)
        if target is not None:
            updated = target.round_trip(updated).reshape(updated.shape)
        if fault_hook is not None:
            updated = fault_hook(iteration, updated)

        residual = float(np.max(np.abs(updated - state)))
        result.residuals.append(residual)
        state = updated
        result.iterations = iteration
        if not np.isfinite(residual):
            result.diverged = True
            break
        if residual < tolerance:
            result.converged = True
            break
    result.solution = state
    return result
