"""Application-level resiliency campaigns through the runner.

The classic campaign scores isolated value corruption; this layer asks
the downstream question — does a flipped bit in *live solver state*
matter?  Each shard is an (injection-iteration, bit) cell that replays
a deterministic solve (CG on the Poisson system, or the Jacobi
stencil), flips one element of the iterate via the shared fault-spec
grammar, and records a typed outcome:

``converged``
    finished within the clean run's iteration count and matched the
    fault-free solution.
``delayed``
    converged to the right answer, but needed extra iterations
    (``iteration_overhead > 0``).
``diverged``
    blew up (non-finite state) or hit the iteration cap without
    converging.
``sdc``
    silent data corruption: converged on schedule, but to an answer
    whose relative error against the fault-free solution exceeds the
    SDC threshold.

Cells reuse the integer-keyed shard machinery unchanged: cell id
``it_idx * nbits + bit`` is invertible, so manifests, shard files,
leases, and done-records all work exactly as they do for value
campaigns.  Seeding is a pure function of (seed, iteration, bit) so
any process — serial, pool worker, or work-stealing worker — replays a
cell byte-identically.
"""

from __future__ import annotations

import csv
import io
import time
from dataclasses import dataclass, fields as dataclass_fields
from pathlib import Path
from typing import IO, Sequence

import numpy as np

from repro.apps.krylov import cg_solve
from repro.apps.stencil import PoissonProblem, jacobi_solve
from repro.formats import NumberFormat, resolve
from repro.inject.campaign import CampaignConfig
from repro.inject.faults import FaultMasks, apply_masks
from repro.inject.faultspec import (
    DEFAULT_FAULT_SPEC,
    canonical_fault_spec,
    resolve_fault,
)
from repro.inject.results import CSV_SCHEMA_VERSION
from repro.runner.manifest import RunManifest
from repro.runner.runner import CampaignRunner, RunnerError, ShardSpec

__all__ = [
    "OUTCOMES",
    "AppCampaignConfig",
    "AppCampaignRunner",
    "AppTrialRecords",
    "app_solver_defaults",
    "cell_seeds",
    "classify_outcome",
    "classify_outcomes",
    "run_app_shard",
]

#: Outcome taxonomy, listed from best to worst.  Classification picks
#: the *worst* label that applies.
OUTCOME_CONVERGED = "converged"
OUTCOME_DELAYED = "delayed"
OUTCOME_DIVERGED = "diverged"
OUTCOME_SDC = "sdc"
OUTCOMES = (OUTCOME_CONVERGED, OUTCOME_DELAYED, OUTCOME_DIVERGED, OUTCOME_SDC)

#: app name -> (default max_iterations, default tolerance)
_APP_DEFAULTS = {
    "cg": (500, 1e-8),
    "jacobi": (2000, 1e-6),
}

APP_NAMES = tuple(sorted(_APP_DEFAULTS))


def app_solver_defaults(app: str) -> tuple[int, float]:
    """Return the (max_iterations, tolerance) defaults for ``app``."""
    try:
        return _APP_DEFAULTS[app]
    except KeyError:
        raise ValueError(
            f"unknown app {app!r}; expected one of {', '.join(APP_NAMES)}"
        ) from None


# ---------------------------------------------------------------------------
# Outcome classification (scalar and batched paths must agree)
# ---------------------------------------------------------------------------


def classify_outcome(
    converged: bool,
    diverged: bool,
    iteration_overhead: int,
    solution_error: float,
    sdc_threshold: float,
) -> str:
    """Classify a single trial.  Priority: diverged > sdc > delayed."""
    if diverged or not converged:
        return OUTCOME_DIVERGED
    error = float(solution_error)
    if not np.isfinite(error) or error > sdc_threshold:
        return OUTCOME_SDC
    if iteration_overhead > 0:
        return OUTCOME_DELAYED
    return OUTCOME_CONVERGED


def classify_outcomes(
    converged: np.ndarray,
    diverged: np.ndarray,
    iteration_overhead: np.ndarray,
    solution_error: np.ndarray,
    sdc_threshold: float,
) -> np.ndarray:
    """Vectorized :func:`classify_outcome` over parallel trial arrays.

    Labels are assigned best-first so later (worse) assignments win,
    which reproduces the scalar priority exactly.
    """
    converged = np.asarray(converged, dtype=bool)
    diverged = np.asarray(diverged, dtype=bool)
    overhead = np.asarray(iteration_overhead)
    error = np.asarray(solution_error, dtype=np.float64)
    outcomes = np.full(converged.shape, OUTCOME_CONVERGED, dtype="<U16")
    outcomes[overhead > 0] = OUTCOME_DELAYED
    outcomes[~np.isfinite(error) | (error > sdc_threshold)] = OUTCOME_SDC
    outcomes[diverged | ~converged] = OUTCOME_DIVERGED
    return outcomes


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AppCampaignConfig:
    """Identity of an app campaign: solver, schedule, fault, thresholds.

    ``iterations`` is the injection schedule — the 1-based solver
    iterations at which state is corrupted (one cell row per entry).
    ``max_iterations``/``tolerance`` of 0 mean "use the app's default"
    and are resolved eagerly so the manifest always records concrete
    values.
    """

    app: str = "cg"
    grid: int = 16
    iterations: tuple[int, ...] = (10,)
    trials_per_cell: int = 3
    bits: tuple[int, ...] | None = None
    seed: int = 2023
    fault: str = DEFAULT_FAULT_SPEC
    max_iterations: int = 0
    tolerance: float = 0.0
    sdc_threshold: float = 1e-3

    def __post_init__(self) -> None:
        default_iters, default_tol = app_solver_defaults(self.app)
        if self.grid < 3:
            raise ValueError("grid must be >= 3")
        schedule = tuple(int(step) for step in self.iterations)
        if not schedule:
            raise ValueError("injection schedule must name at least one iteration")
        if any(step < 1 for step in schedule):
            raise ValueError("injection iterations are 1-based: every entry must be >= 1")
        if any(b >= a for a, b in zip(schedule[1:], schedule)):
            raise ValueError("injection schedule must be strictly increasing")
        object.__setattr__(self, "iterations", schedule)
        if self.trials_per_cell < 1:
            raise ValueError("trials_per_cell must be >= 1")
        if self.bits is not None:
            object.__setattr__(self, "bits", tuple(int(b) for b in self.bits))
        if not self.sdc_threshold > 0:
            raise ValueError("sdc_threshold must be positive")
        object.__setattr__(self, "fault", canonical_fault_spec(self.fault))
        if self.max_iterations == 0:
            object.__setattr__(self, "max_iterations", default_iters)
        elif self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.tolerance == 0.0:
            object.__setattr__(self, "tolerance", default_tol)
        elif not self.tolerance > 0:
            raise ValueError("tolerance must be positive")
        if max(schedule) > self.max_iterations:
            raise ValueError(
                "injection schedule extends past max_iterations "
                f"({max(schedule)} > {self.max_iterations})"
            )

    # -- cell arithmetic ----------------------------------------------------

    def resolved_bits(self, target: NumberFormat | str) -> tuple[int, ...]:
        target = resolve(target)
        if self.bits is None:
            return tuple(range(target.nbits))
        for bit in self.bits:
            if not 0 <= bit < target.nbits:
                raise ValueError(
                    f"bit {bit} out of range for {target.name} ({target.nbits} bits)"
                )
        return self.bits

    def cells(self, target: NumberFormat | str) -> tuple[int, ...]:
        """All cell ids for this schedule x bit grid, in shard order."""
        target = resolve(target)
        bits = self.resolved_bits(target)
        return tuple(
            it_idx * target.nbits + bit
            for it_idx in range(len(self.iterations))
            for bit in bits
        )

    def cell_location(self, cell: int, nbits: int) -> tuple[int, int]:
        """Invert a cell id to its (injection iteration, bit)."""
        it_idx, bit = divmod(int(cell), int(nbits))
        if not 0 <= it_idx < len(self.iterations):
            raise ValueError(f"cell {cell} outside the injection schedule")
        return self.iterations[it_idx], bit

    # -- problem plumbing ---------------------------------------------------

    def problem(self) -> PoissonProblem:
        return PoissonProblem(grid=self.grid)

    def dataset_array(self) -> np.ndarray:
        """The right-hand side the app solves against.

        Doubles as the manifest's dataset fingerprint: changing the
        problem changes the campaign identity.
        """
        problem = self.problem()
        if self.app == "cg":
            return problem.point_source_rhs().reshape(-1)
        return problem.rhs().reshape(-1)

    # -- manifest round trip ------------------------------------------------

    def manifest_payload(self) -> dict:
        return {
            "name": self.app,
            "grid": self.grid,
            "iterations": list(self.iterations),
            "max_iterations": self.max_iterations,
            "tolerance": self.tolerance,
            "sdc_threshold": self.sdc_threshold,
        }

    @classmethod
    def from_manifest(cls, manifest: RunManifest) -> "AppCampaignConfig":
        if manifest.app is None:
            raise RunnerError("manifest does not describe an app campaign")
        payload = manifest.app
        return cls(
            app=str(payload["name"]),
            grid=int(payload["grid"]),
            iterations=tuple(int(step) for step in payload["iterations"]),
            trials_per_cell=manifest.trials_per_bit,
            bits=manifest.bits,
            seed=manifest.seed,
            fault=manifest.fault,
            max_iterations=int(payload["max_iterations"]),
            tolerance=float(payload["tolerance"]),
            sdc_threshold=float(payload["sdc_threshold"]),
        )


def cell_seeds(
    config: AppCampaignConfig, target: NumberFormat | str
) -> dict[int, np.random.SeedSequence]:
    """Deterministic per-cell seeds, a pure function of (seed, iteration, bit).

    Unlike value campaigns (which spawn one child per bit from a single
    root), app cells key the spawn path on the *injection iteration and
    bit directly*, so any process can reconstruct any cell's stream
    without walking a shared sequence — the discipline work-stealing
    replay relies on.
    """
    target = resolve(target)
    seeds: dict[int, np.random.SeedSequence] = {}
    for it_idx, iteration in enumerate(config.iterations):
        for bit in config.resolved_bits(target):
            cell = it_idx * target.nbits + bit
            seeds[cell] = np.random.SeedSequence(
                entropy=config.seed, spawn_key=(iteration, bit)
            )
    return seeds


# ---------------------------------------------------------------------------
# Trial records (same columnar CSV discipline as inject.results)
# ---------------------------------------------------------------------------

_APP_INT_COLUMNS = (
    "trial",
    "cell",
    "iteration",
    "bit",
    "index",
    "clean_iterations",
    "faulty_iterations",
)
_APP_BOOL_COLUMNS = ("converged", "diverged")
_APP_FLOAT_COLUMNS = ("solution_error",)
_APP_STR_COLUMNS = ("outcome",)
_APP_OPTIONAL_COLUMNS = ("fault_spec",)
_APP_OPTIONAL_DEFAULTS = {"fault_spec": DEFAULT_FAULT_SPEC}


@dataclass
class AppTrialRecords:
    """Columnar app-campaign trial results with CSV round-tripping.

    Mirrors :class:`repro.inject.results.TrialRecords` byte-for-byte in
    framing (schema comment, header, ``repr`` float serialization) but
    carries the solver outcome taxonomy instead of value-error metrics.
    """

    trial: np.ndarray
    cell: np.ndarray
    iteration: np.ndarray
    bit: np.ndarray
    index: np.ndarray
    clean_iterations: np.ndarray
    faulty_iterations: np.ndarray
    converged: np.ndarray
    diverged: np.ndarray
    solution_error: np.ndarray
    outcome: np.ndarray
    fault_spec: np.ndarray | None = None

    def __post_init__(self) -> None:
        lengths = {
            name: len(getattr(self, name))
            for name in self.column_names()
            if getattr(self, name) is not None
        }
        if len(set(lengths.values())) > 1:
            raise ValueError(f"column lengths disagree: {lengths}")

    @classmethod
    def column_names(cls) -> list[str]:
        return [f.name for f in dataclass_fields(cls)]

    def __len__(self) -> int:
        return len(self.trial)

    @property
    def iteration_overhead(self) -> np.ndarray:
        return self.faulty_iterations - self.clean_iterations

    @classmethod
    def empty(cls) -> "AppTrialRecords":
        return cls(
            trial=np.empty(0, dtype=np.int64),
            cell=np.empty(0, dtype=np.int64),
            iteration=np.empty(0, dtype=np.int64),
            bit=np.empty(0, dtype=np.int64),
            index=np.empty(0, dtype=np.int64),
            clean_iterations=np.empty(0, dtype=np.int64),
            faulty_iterations=np.empty(0, dtype=np.int64),
            converged=np.empty(0, dtype=bool),
            diverged=np.empty(0, dtype=bool),
            solution_error=np.empty(0, dtype=np.float64),
            outcome=np.empty(0, dtype="<U16"),
        )

    @classmethod
    def concatenate(cls, parts: Sequence["AppTrialRecords"]) -> "AppTrialRecords":
        parts = [p for p in parts if len(p)]
        if not parts:
            return cls.empty()
        columns = {}
        for name in cls.column_names():
            if name in _APP_OPTIONAL_COLUMNS:
                present = [p for p in parts if getattr(p, name) is not None]
                if not present:
                    columns[name] = None
                    continue
                default = _APP_OPTIONAL_DEFAULTS[name]
                pieces = [
                    getattr(p, name)
                    if getattr(p, name) is not None
                    else np.full(len(p), default, dtype="<U32")
                    for p in parts
                ]
                columns[name] = np.concatenate(pieces)
            else:
                columns[name] = np.concatenate([getattr(p, name) for p in parts])
        return cls(**columns)

    def select(self, mask: np.ndarray) -> "AppTrialRecords":
        return type(self)(**{
            name: (getattr(self, name)[mask] if getattr(self, name) is not None else None)
            for name in self.column_names()
        })

    def for_bit(self, bit: int) -> "AppTrialRecords":
        return self.select(self.bit == bit)

    def for_cell(self, cell: int) -> "AppTrialRecords":
        return self.select(self.cell == cell)

    # -- CSV ----------------------------------------------------------------

    def _active_columns(self) -> list[str]:
        return [
            name for name in self.column_names()
            if name not in _APP_OPTIONAL_COLUMNS or getattr(self, name) is not None
        ]

    def _write_csv_handle(self, handle: IO[str]) -> None:
        writer = csv.writer(handle, lineterminator="\n")
        writer.writerow([f"# schema_version={CSV_SCHEMA_VERSION}"])
        names = self._active_columns()
        writer.writerow(names)
        columns = [getattr(self, name) for name in names]
        for row in zip(*columns):
            writer.writerow([
                repr(float(value))
                if isinstance(value, (float, np.floating))
                else (
                    str(value)
                    if isinstance(value, (str, np.str_))
                    else int(value)
                )
                for value in row
            ])

    def write_csv(self, path: str | Path) -> None:
        with open(path, "w", newline="") as handle:
            self._write_csv_handle(handle)

    def to_csv_string(self) -> str:
        buffer = io.StringIO()
        self._write_csv_handle(buffer)
        return buffer.getvalue()

    @classmethod
    def _read_csv_handle(cls, handle: IO[str]) -> "AppTrialRecords":
        reader = csv.reader(handle)
        rows = list(reader)
        if rows and rows[0] and rows[0][0].startswith("# schema_version="):
            rows = rows[1:]
        if not rows:
            return cls.empty()
        header, data = rows[0], rows[1:]
        required = [n for n in cls.column_names() if n not in _APP_OPTIONAL_COLUMNS]
        valid_headers = [required]
        for count in range(1, len(_APP_OPTIONAL_COLUMNS) + 1):
            valid_headers.append(required + list(_APP_OPTIONAL_COLUMNS[:count]))
        if header not in valid_headers:
            raise ValueError(f"unexpected app-campaign CSV header: {header}")
        columns: dict[str, np.ndarray | None] = {
            name: None for name in _APP_OPTIONAL_COLUMNS
        }
        for position, name in enumerate(header):
            raw = [row[position] for row in data]
            if name in _APP_INT_COLUMNS:
                columns[name] = np.array(raw, dtype=np.int64)
            elif name in _APP_BOOL_COLUMNS:
                columns[name] = np.array([bool(int(v)) for v in raw], dtype=bool)
            elif name in _APP_STR_COLUMNS:
                columns[name] = np.array(raw, dtype="<U16")
            elif name in _APP_OPTIONAL_COLUMNS:
                columns[name] = np.array(raw, dtype="<U32")
            else:
                columns[name] = np.array(raw, dtype=np.float64)
        return cls(**columns)

    @classmethod
    def read_csv(cls, path: str | Path) -> "AppTrialRecords":
        with open(path, newline="") as handle:
            return cls._read_csv_handle(handle)

    @classmethod
    def from_csv_string(cls, text: str) -> "AppTrialRecords":
        return cls._read_csv_handle(io.StringIO(text))


# ---------------------------------------------------------------------------
# Solving and injecting
# ---------------------------------------------------------------------------


def _solve(config: AppCampaignConfig, target: NumberFormat, fault_hook=None):
    problem = config.problem()
    if config.app == "cg":
        return cg_solve(
            problem,
            target,
            max_iterations=config.max_iterations,
            tolerance=config.tolerance,
            fault_hook=fault_hook,
        )
    return jacobi_solve(
        problem,
        target,
        max_iterations=config.max_iterations,
        tolerance=config.tolerance,
        fault_hook=fault_hook,
    )


# The fault-free reference solve is identical for every cell of a
# campaign, so memoize it per process (keyed on everything that shapes
# the solve).  Bounded: a sweep touches a handful of (app, format)
# pairs at most.
_CLEAN_CACHE: dict[tuple, object] = {}
_CLEAN_CACHE_LIMIT = 16


def _clean_solve(config: AppCampaignConfig, target: NumberFormat):
    key = (
        config.app,
        config.grid,
        target.name,
        config.max_iterations,
        config.tolerance,
    )
    if key not in _CLEAN_CACHE:
        if len(_CLEAN_CACHE) >= _CLEAN_CACHE_LIMIT:
            _CLEAN_CACHE.clear()
        _CLEAN_CACHE[key] = _solve(config, target, fault_hook=None)
    return _CLEAN_CACHE[key]


def _mask_injector(
    iteration: int, flat_index: int, masks: FaultMasks, target: NumberFormat
):
    """Hook that applies pre-drawn fault masks to one live state element.

    Masks are drawn from the shard RNG *before* the solve starts, so
    the injection is a pure function of (seed, iteration, bit) and
    never depends on solver state — the property cross-process replay
    requires.
    """

    def hook(step: int, state: np.ndarray) -> np.ndarray:
        if step != iteration:
            return state
        flat = state.reshape(-1).copy()
        bits = target.to_bits(flat[flat_index:flat_index + 1])
        corrupted = apply_masks(bits, masks, target.nbits)
        flat[flat_index] = target.from_bits(corrupted)[0]
        return flat.reshape(state.shape)

    return hook


def run_app_shard(
    config: AppCampaignConfig,
    target: NumberFormat | str,
    cell: int,
    trials: int,
    seed: np.random.SeedSequence | int,
) -> AppTrialRecords:
    """Run every trial of one (injection-iteration, bit) cell.

    RNG discipline matches ``run_campaign_shard``: one generator per
    shard, element indices drawn first, then per-trial fault masks —
    all before any solve, so replay never depends on solver state.
    """
    target = resolve(target)
    iteration, bit = config.cell_location(cell, target.nbits)
    resolved = resolve_fault(config.fault)
    model = resolved.for_bit(bit, target.nbits)
    rng = np.random.default_rng(seed)
    state_size = config.grid * config.grid
    indices = rng.integers(0, state_size, size=trials)
    trial_masks = [model.masks((), target.nbits, rng) for _ in range(trials)]

    clean = _clean_solve(config, target)
    converged = np.empty(trials, dtype=bool)
    diverged = np.empty(trials, dtype=bool)
    faulty_iterations = np.empty(trials, dtype=np.int64)
    solution_error = np.empty(trials, dtype=np.float64)
    for trial in range(trials):
        hook = _mask_injector(iteration, int(indices[trial]), trial_masks[trial], target)
        faulty = _solve(config, target, fault_hook=hook)
        converged[trial] = faulty.converged
        diverged[trial] = faulty.diverged
        faulty_iterations[trial] = faulty.iterations
        solution_error[trial] = faulty.error_vs(clean.solution)

    clean_iterations = np.full(trials, clean.iterations, dtype=np.int64)
    outcome = classify_outcomes(
        converged,
        diverged,
        faulty_iterations - clean_iterations,
        solution_error,
        config.sdc_threshold,
    )
    fault_column = None
    if not resolved.is_default:
        fault_column = np.full(trials, resolved.spec, dtype="<U32")
    return AppTrialRecords(
        trial=np.arange(trials, dtype=np.int64),
        cell=np.full(trials, cell, dtype=np.int64),
        iteration=np.full(trials, iteration, dtype=np.int64),
        bit=np.full(trials, bit, dtype=np.int64),
        index=indices.astype(np.int64),
        clean_iterations=clean_iterations,
        faulty_iterations=faulty_iterations,
        converged=converged,
        diverged=diverged,
        solution_error=solution_error,
        outcome=outcome,
        fault_spec=fault_column,
    )


# ---------------------------------------------------------------------------
# Runner integration
# ---------------------------------------------------------------------------


class AppCampaignRunner(CampaignRunner):
    """Campaign runner whose shards are app (iteration, bit) cells.

    Inherits persistence, resume, executors, chaos hardening, and
    observability wholesale; only planning, shard compute, and manifest
    identity differ.
    """

    records_class = AppTrialRecords

    def __init__(
        self,
        config: AppCampaignConfig,
        target: NumberFormat | str,
        **kwargs,
    ) -> None:
        self.app_config = config
        base = CampaignConfig(
            trials_per_bit=config.trials_per_cell,
            bits=config.bits,
            seed=config.seed,
            fault=config.fault,
        )
        kwargs.setdefault("dataset", {"kind": "app", "app": config.app})
        kwargs.setdefault("label", config.app)
        super().__init__(config.dataset_array(), target, base, **kwargs)

    def plan(self) -> list[ShardSpec]:
        return [
            ShardSpec(bit=cell, trials=self.app_config.trials_per_cell, seed=seed)
            for cell, seed in cell_seeds(self.app_config, self.target).items()
        ]

    def _fresh_manifest(self, shards):
        manifest = super()._fresh_manifest(shards)
        manifest.app = self.app_config.manifest_payload()
        return manifest

    def _compute_shard(self, spec: ShardSpec):
        start = time.perf_counter()
        records = run_app_shard(
            self.app_config, self.target, spec.bit, spec.trials, spec.seed
        )
        return records, time.perf_counter() - start

    @classmethod
    def from_run_dir(cls, run_dir, data=None, **kwargs) -> "AppCampaignRunner":
        run_dir = Path(run_dir)
        manifest = RunManifest.load(run_dir)
        config = AppCampaignConfig.from_manifest(manifest)
        kwargs.setdefault("label", manifest.label)
        kwargs.setdefault("dataset", manifest.dataset)
        return cls(config, manifest.target_spec, run_dir=run_dir, **kwargs)


def run_app_campaign(
    config: AppCampaignConfig,
    target: NumberFormat | str,
    **kwargs,
):
    """One-call convenience mirroring :func:`repro.inject.campaign.run_campaign`."""
    resume = kwargs.pop("resume", False)
    runner = AppCampaignRunner(config, target, **kwargs)
    return runner.run(resume=resume)
