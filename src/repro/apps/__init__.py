"""Application-level workloads: iterative solver and BLAS kernels."""

from repro.apps.blas import (
    KernelResult,
    dot_error_comparison,
    fused_posit_dot,
    stored_axpy,
    stored_dot,
)
from repro.apps.krylov import CGResult, cg_fault_outcome, cg_solve, poisson_matvec
from repro.apps.faulty import (
    AppFaultOutcome,
    AppFaultSpec,
    bit_sweep_campaign,
    run_faulty_solve,
    summarize_outcomes,
)
from repro.apps.stencil import PoissonProblem, SolveResult, jacobi_solve

__all__ = [
    "AppFaultOutcome",
    "AppFaultSpec",
    "CGResult",
    "KernelResult",
    "PoissonProblem",
    "SolveResult",
    "bit_sweep_campaign",
    "cg_fault_outcome",
    "cg_solve",
    "poisson_matvec",
    "dot_error_comparison",
    "fused_posit_dot",
    "jacobi_solve",
    "run_faulty_solve",
    "stored_axpy",
    "stored_dot",
    "summarize_outcomes",
]
