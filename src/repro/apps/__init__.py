"""Application-level workloads: iterative solver and BLAS kernels."""

from repro.apps.blas import (
    KernelResult,
    dot_error_comparison,
    fused_posit_dot,
    stored_axpy,
    stored_dot,
)
from repro.apps.campaign import (
    OUTCOMES,
    AppCampaignConfig,
    AppCampaignRunner,
    AppTrialRecords,
    cell_seeds,
    classify_outcome,
    classify_outcomes,
    run_app_campaign,
    run_app_shard,
)
from repro.apps.krylov import CGResult, cg_fault_outcome, cg_solve, poisson_matvec
from repro.apps.faulty import (
    AppFaultOutcome,
    AppFaultSpec,
    run_faulty_solve,
    summarize_outcomes,
)
from repro.apps.stencil import PoissonProblem, SolveResult, jacobi_solve

__all__ = [
    "AppCampaignConfig",
    "AppCampaignRunner",
    "AppFaultOutcome",
    "AppFaultSpec",
    "AppTrialRecords",
    "CGResult",
    "KernelResult",
    "OUTCOMES",
    "PoissonProblem",
    "SolveResult",
    "cell_seeds",
    "cg_fault_outcome",
    "cg_solve",
    "classify_outcome",
    "classify_outcomes",
    "poisson_matvec",
    "dot_error_comparison",
    "fused_posit_dot",
    "jacobi_solve",
    "run_app_campaign",
    "run_app_shard",
    "run_faulty_solve",
    "stored_axpy",
    "stored_dot",
    "summarize_outcomes",
]
