"""Application-level fault injection for the iterative workloads.

The paper injects faults into *stored data*; the natural follow-on
question — which its related work (Elliott et al. on GMRES, Casas et al.
on AMG) studies for IEEE floats — is what a single flip does to a whole
computation.  This harness injects one bit flip into the solver state at
a chosen iteration and measures the application-level outcome: extra
iterations to converge, final-solution error, or divergence.

This module is the *single-fault* primitive.  Campaign-scale sweeps —
every (injection iteration, bit) cell as a resumable runner shard, with
the full fault-model grammar and the converged/delayed/diverged/sdc
outcome taxonomy — live in :mod:`repro.apps.campaign`, which replaced
the old ``bit_sweep_campaign`` loop here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.stencil import PoissonProblem, jacobi_solve
from repro.formats import NumberFormat, resolve


@dataclass(frozen=True)
class AppFaultSpec:
    """One application-level fault: where, when, and which bit."""

    iteration: int
    flat_index: int
    bit: int


@dataclass
class AppFaultOutcome:
    """Application-level consequence of one injected flip."""

    spec: AppFaultSpec
    clean_iterations: int
    faulty_iterations: int
    converged: bool
    diverged: bool
    solution_error: float  # relative L2 vs the clean solution

    @property
    def iteration_overhead(self) -> int:
        """Extra sweeps needed to recover from the flip."""
        return self.faulty_iterations - self.clean_iterations


def _state_flipper(spec: AppFaultSpec, target: NumberFormat):
    def hook(iteration: int, state: np.ndarray) -> np.ndarray:
        if iteration != spec.iteration:
            return state
        flat = state.reshape(-1).copy()
        bits = target.to_bits(flat[spec.flat_index : spec.flat_index + 1])
        flipped = bits ^ bits.dtype.type(1 << spec.bit)
        flat[spec.flat_index] = target.from_bits(flipped)[0]
        return flat.reshape(state.shape)

    return hook


def run_faulty_solve(
    problem: PoissonProblem,
    target: NumberFormat | str,
    spec: AppFaultSpec,
    max_iterations: int = 2000,
    tolerance: float = 1e-6,
) -> AppFaultOutcome:
    """Solve once cleanly and once with the fault; compare outcomes."""
    if isinstance(target, str):
        target = resolve(target)
    clean = jacobi_solve(problem, target, max_iterations, tolerance)
    faulty = jacobi_solve(
        problem, target, max_iterations, tolerance,
        fault_hook=_state_flipper(spec, target),
    )
    return AppFaultOutcome(
        spec=spec,
        clean_iterations=clean.iterations,
        faulty_iterations=faulty.iterations,
        converged=faulty.converged,
        diverged=faulty.diverged,
        solution_error=faulty.error_vs(clean.solution),
    )


def summarize_outcomes(outcomes: list[AppFaultOutcome]) -> dict[str, float]:
    """Campaign-level application metrics."""
    if not outcomes:
        raise ValueError("no outcomes to summarize")
    overheads = np.array([o.iteration_overhead for o in outcomes], dtype=np.float64)
    errors = np.array([o.solution_error for o in outcomes])
    finite_errors = errors[np.isfinite(errors)]
    return {
        "trials": float(len(outcomes)),
        "converged_fraction": float(np.mean([o.converged for o in outcomes])),
        "diverged_fraction": float(np.mean([o.diverged for o in outcomes])),
        "mean_iteration_overhead": float(np.mean(overheads)),
        "max_iteration_overhead": float(np.max(overheads)),
        "mean_solution_error": float(np.mean(finite_errors)) if finite_errors.size else float("nan"),
        "max_solution_error": float(np.max(finite_errors)) if finite_errors.size else float("nan"),
    }
