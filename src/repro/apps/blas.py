"""BLAS-level kernels under storage formats.

Dot products and AXPY with operands stored in a chosen number system,
plus the quire-fused posit dot product — the accuracy/reproducibility
workloads posit advocates cite (and the paper's introduction echoes).
Each kernel returns both the computed value and the exact float64
reference so examples and tests can quantify storage-format error.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.formats import NumberFormat, PositTarget, resolve
from repro.posit.quire import dot as quire_dot


def _exact_dot(a: np.ndarray, b: np.ndarray) -> float:
    """Exact rational dot product of float arrays, as nearest float64.

    Floats are dyadic rationals, so the sum below is exact; only the
    final float() rounds.  This is the correct reference for accumulation
    error — float64 np.dot itself loses ill-conditioned cancellations.
    """
    total = Fraction(0)
    for x, y in zip(a.tolist(), b.tolist()):
        total += Fraction(x) * Fraction(y)
    return float(total)


@dataclass(frozen=True)
class KernelResult:
    """A computed kernel value next to its exact reference.

    The reference is the exact (rational-arithmetic) result over the
    *stored* operands, so the error isolates accumulation/rounding of
    the kernel itself from the storage conversion.
    """

    value: float
    reference: float

    @property
    def absolute_error(self) -> float:
        return abs(self.value - self.reference)

    @property
    def relative_error(self) -> float:
        if self.reference == 0:
            return 0.0 if self.value == 0 else float("inf")
        return abs(self.value - self.reference) / abs(self.reference)


def _resolve(target: NumberFormat | str) -> NumberFormat:
    return resolve(target) if isinstance(target, str) else target


def stored_dot(a, b, target: NumberFormat | str) -> KernelResult:
    """Dot product with both operands and every partial sum stored.

    Models hardware whose accumulator has the same width as memory —
    the worst case the quire is designed to fix.
    """
    target = _resolve(target)
    a64 = np.asarray(a, dtype=np.float64)
    b64 = np.asarray(b, dtype=np.float64)
    stored_a = target.round_trip(a64)
    stored_b = target.round_trip(b64)
    reference = _exact_dot(stored_a, stored_b)
    accumulator = 0.0
    for x, y in zip(stored_a, stored_b):
        product = target.round_trip(np.asarray([x * y]))[0]
        accumulator = target.round_trip(np.asarray([accumulator + product]))[0]
    return KernelResult(value=float(accumulator), reference=reference)


def fused_posit_dot(a, b, target: NumberFormat | str) -> KernelResult:
    """Posit dot product through the quire: one rounding at the end."""
    target = _resolve(target)
    if not isinstance(target, PositTarget):
        raise TypeError(f"fused_posit_dot needs a posit target, got {target.name}")
    a64 = np.asarray(a, dtype=np.float64)
    b64 = np.asarray(b, dtype=np.float64)
    pa = target.to_bits(a64)
    pb = target.to_bits(b64)
    reference = _exact_dot(target.from_bits(pa), target.from_bits(pb))
    pattern = quire_dot(pa, pb, target.config)
    from repro.posit.decode import decode

    value = float(decode(np.uint64(pattern), target.config))
    return KernelResult(value=value, reference=reference)


def stored_axpy(alpha: float, x, y, target: NumberFormat | str) -> np.ndarray:
    """alpha*x + y with the result stored in the target format."""
    target = _resolve(target)
    x64 = np.asarray(x, dtype=np.float64)
    y64 = np.asarray(y, dtype=np.float64)
    return target.round_trip(alpha * x64 + y64)


def dot_error_comparison(a, b) -> dict[str, float]:
    """Relative error of several dot-product strategies vs float64.

    Returns {strategy: relative_error}; the reproducibility story in one
    dict: sequential posit32 vs quire-fused posit32 vs sequential ieee32.
    """
    out = {}
    out["ieee32_sequential"] = stored_dot(a, b, "ieee32").relative_error
    out["posit32_sequential"] = stored_dot(a, b, "posit32").relative_error
    out["posit32_quire"] = fused_posit_dot(a, b, "posit32").relative_error
    return out
