"""Protection-scheme modeling and evaluation over campaign records."""

from repro.protect.evaluate import (
    ProtectionReport,
    bits_needed_for_reduction,
    evaluate_scheme,
    msb_tmr_frontier,
    ranked_bit_positions,
    tmr_frontier,
)
from repro.protect.schemes import (
    FullDuplication,
    FullTMR,
    NoProtection,
    ProtectionScheme,
    SelectiveParity,
    SelectiveTMR,
    top_bits,
)

__all__ = [
    "FullDuplication",
    "FullTMR",
    "NoProtection",
    "ProtectionReport",
    "ProtectionScheme",
    "SelectiveParity",
    "SelectiveTMR",
    "bits_needed_for_reduction",
    "evaluate_scheme",
    "msb_tmr_frontier",
    "ranked_bit_positions",
    "tmr_frontier",
    "top_bits",
]
