"""Replay campaign records through a protection scheme.

Every campaign trial records which bit flipped and how much error it
caused; under the single-fault model a scheme's effect is therefore
exactly computable after the fact:

* flips at covered positions are corrected (TMR) or detected-and-
  recovered (parity/duplication) — either way they cause no SDC;
* flips at uncovered positions keep their recorded error.

The evaluation yields residual SDC statistics per scheme and the
coverage/overhead frontier of "protect the top-k bits" designs, the
concrete deliverable the paper's hardware-design motivation calls for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.inject.results import TrialRecords
from repro.protect.schemes import ProtectionScheme, SelectiveTMR, top_bits


@dataclass(frozen=True)
class ProtectionReport:
    """Residual-error statistics of one scheme over one campaign."""

    scheme: str
    overhead_bits: int
    overhead_fraction: float
    covered_fraction: float
    residual_serious_fraction: float
    residual_catastrophic_fraction: float
    residual_mean_rel_err: float
    baseline_serious_fraction: float

    @property
    def serious_reduction(self) -> float:
        """Fraction of serious SDCs eliminated (0..1)."""
        if self.baseline_serious_fraction == 0:
            return 1.0
        return 1.0 - self.residual_serious_fraction / self.baseline_serious_fraction


def _serious_mask(records: TrialRecords, threshold: float) -> np.ndarray:
    rel = records.rel_err
    return ~np.isfinite(rel) | (rel > threshold)


def evaluate_scheme(
    records: TrialRecords,
    scheme: ProtectionScheme,
    nbits: int,
    serious_threshold: float = 1.0,
) -> ProtectionReport:
    """Residual statistics after applying `scheme` to every trial."""
    if len(records) == 0:
        raise ValueError("cannot evaluate a scheme on zero trials")
    covered = scheme.covers(records.bit)
    surviving = ~covered  # flips the scheme neither corrects nor detects

    serious = _serious_mask(records, serious_threshold)
    baseline_serious = float(np.mean(serious))
    residual_serious = float(np.mean(serious & surviving))
    residual_catastrophic = float(np.mean(records.non_finite & surviving))

    surviving_rel = records.rel_err[surviving]
    finite = surviving_rel[np.isfinite(surviving_rel)]
    residual_mean = float(np.mean(finite)) if finite.size else 0.0

    return ProtectionReport(
        scheme=scheme.describe(),
        overhead_bits=scheme.overhead_bits(nbits),
        overhead_fraction=scheme.overhead_fraction(nbits),
        covered_fraction=float(np.mean(covered)),
        residual_serious_fraction=residual_serious,
        residual_catastrophic_fraction=residual_catastrophic,
        residual_mean_rel_err=residual_mean,
        baseline_serious_fraction=baseline_serious,
    )


def ranked_bit_positions(
    records: TrialRecords, nbits: int, serious_threshold: float = 1.0
) -> list[int]:
    """Bit positions ranked by how many serious SDCs they cause."""
    serious = _serious_mask(records, serious_threshold)
    counts = np.array(
        [int(np.sum(serious & (records.bit == b))) for b in range(nbits)]
    )
    return [int(b) for b in np.argsort(counts, kind="stable")[::-1]]


def tmr_frontier(
    records: TrialRecords,
    nbits: int,
    serious_threshold: float = 1.0,
    max_protected: int | None = None,
) -> list[ProtectionReport]:
    """Coverage/overhead frontier of data-ranked selective TMR.

    Protects the k most SDC-productive bit positions for k = 0..max,
    returning one report per k.  The frontier answers "how many bits must
    this number system protect to reach a residual SDC target?".
    """
    ranked = ranked_bit_positions(records, nbits, serious_threshold)
    if max_protected is None:
        max_protected = nbits
    reports = []
    for k in range(0, max_protected + 1):
        scheme: ProtectionScheme
        if k == 0:
            from repro.protect.schemes import NoProtection

            scheme = NoProtection()
        else:
            scheme = SelectiveTMR(tuple(sorted(ranked[:k], reverse=True)))
        reports.append(evaluate_scheme(records, scheme, nbits, serious_threshold))
    return reports


def bits_needed_for_reduction(
    records: TrialRecords,
    nbits: int,
    reduction: float = 0.99,
    serious_threshold: float = 1.0,
) -> int:
    """Smallest k whose top-k TMR removes `reduction` of serious SDCs.

    Returns nbits when even full protection cannot reach the target
    (which cannot happen under the single-fault model, but keeps the
    contract total).
    """
    for k, report in enumerate(tmr_frontier(records, nbits, serious_threshold)):
        if report.serious_reduction >= reduction:
            return k
    return nbits


def msb_tmr_frontier(
    records: TrialRecords, nbits: int, serious_threshold: float = 1.0
) -> list[ProtectionReport]:
    """Frontier of the naive "protect the top-k MSBs" design.

    The natural hardware heuristic; comparing it against
    :func:`tmr_frontier` quantifies how much the data-driven ranking
    saves (for posits the dangerous bits move with the data, so MSB
    protection is less efficient than it is for IEEE).
    """
    reports = []
    for k in range(0, nbits + 1):
        if k == 0:
            from repro.protect.schemes import NoProtection

            scheme: ProtectionScheme = NoProtection()
        else:
            scheme = SelectiveTMR(top_bits(nbits, k))
        reports.append(evaluate_scheme(records, scheme, nbits, serious_threshold))
    return reports
