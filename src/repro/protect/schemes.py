"""Selective protection schemes for stored values.

The paper's purpose is "to inform hardware design for fault-tolerant
systems", and its related work surveys the standard mechanisms: parity /
ECC (Dell, Fulp et al.), redundancy (Fiala et al.), and duplication
(Reinhardt & Mukherjee).  This module models those mechanisms at the
granularity the paper's data supports — *which bit positions of a stored
word are covered* — under the paper's single-bit-flip fault model:

* **Parity** over a set of positions detects any single flip inside the
  set (1 extra bit per word).  Detection is assumed to trigger recovery
  (recomputation / checkpoint restore), so detected flips cause no SDC.
* **TMR** over a set of positions corrects any single flip inside the set
  (2 extra bits per covered position).
* **Duplication** of the whole word detects everything (100% overhead);
  full TMR corrects everything (200%).

Composing a scheme with campaign records (see
:mod:`repro.protect.evaluate`) yields the coverage/overhead frontier a
hardware designer actually needs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


class ProtectionScheme(abc.ABC):
    """A per-word storage protection mechanism (single-fault model)."""

    @abc.abstractmethod
    def covers(self, bit_positions: np.ndarray) -> np.ndarray:
        """Whether a flip at each given bit position lands in coverage."""

    @abc.abstractmethod
    def corrects(self) -> bool:
        """True when covered flips are corrected (vs merely detected)."""

    @abc.abstractmethod
    def overhead_bits(self, nbits: int) -> int:
        """Extra storage bits per word."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable scheme name."""

    def overhead_fraction(self, nbits: int) -> float:
        """Extra bits relative to the unprotected word."""
        return self.overhead_bits(nbits) / nbits

    def detects_even_flips(self) -> bool:
        """Whether an even number of covered flips is still caught.

        Parity-style detection sees only the XOR of its covered
        positions, so two flips inside the set cancel; a compare-based
        mechanism (duplication) catches any mismatch.  Matters only
        under multi-bit fault models (:mod:`repro.analysis.faultsweep`).
        """
        return False


@dataclass(frozen=True)
class NoProtection(ProtectionScheme):
    """Baseline: nothing covered, nothing spent."""

    def covers(self, bit_positions: np.ndarray) -> np.ndarray:
        return np.zeros(np.shape(bit_positions), dtype=bool)

    def corrects(self) -> bool:
        return False

    def overhead_bits(self, nbits: int) -> int:
        return 0

    def describe(self) -> str:
        return "none"


@dataclass(frozen=True)
class SelectiveParity(ProtectionScheme):
    """One parity bit over a chosen set of positions (detect-only)."""

    positions: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.positions)) != len(self.positions):
            raise ValueError("parity positions must be distinct")

    def covers(self, bit_positions: np.ndarray) -> np.ndarray:
        return np.isin(np.asarray(bit_positions), np.asarray(self.positions, dtype=np.int64))

    def corrects(self) -> bool:
        return False

    def overhead_bits(self, nbits: int) -> int:
        return 1

    def describe(self) -> str:
        return f"parity[{len(self.positions)} bits]"


@dataclass(frozen=True)
class SelectiveTMR(ProtectionScheme):
    """Triplicate a chosen set of positions; majority vote corrects."""

    positions: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.positions)) != len(self.positions):
            raise ValueError("TMR positions must be distinct")

    def covers(self, bit_positions: np.ndarray) -> np.ndarray:
        return np.isin(np.asarray(bit_positions), np.asarray(self.positions, dtype=np.int64))

    def corrects(self) -> bool:
        return True

    def overhead_bits(self, nbits: int) -> int:
        return 2 * len(self.positions)

    def describe(self) -> str:
        return f"tmr[{len(self.positions)} bits]"


@dataclass(frozen=True)
class FullDuplication(ProtectionScheme):
    """Duplicate the word; any single flip is detected by mismatch."""

    def covers(self, bit_positions: np.ndarray) -> np.ndarray:
        return np.ones(np.shape(bit_positions), dtype=bool)

    def corrects(self) -> bool:
        return False

    def overhead_bits(self, nbits: int) -> int:
        return nbits

    def describe(self) -> str:
        return "duplication"

    def detects_even_flips(self) -> bool:
        return True  # any mismatch between the copies is visible


@dataclass(frozen=True)
class FullTMR(ProtectionScheme):
    """Triplicate the word; any single flip is corrected by vote."""

    def covers(self, bit_positions: np.ndarray) -> np.ndarray:
        return np.ones(np.shape(bit_positions), dtype=bool)

    def corrects(self) -> bool:
        return True

    def overhead_bits(self, nbits: int) -> int:
        return 2 * nbits

    def describe(self) -> str:
        return "full-tmr"


def top_bits(nbits: int, count: int) -> tuple[int, ...]:
    """The `count` most significant bit positions of an nbits word."""
    if not 0 <= count <= nbits:
        raise ValueError(f"count must be in [0, {nbits}], got {count}")
    return tuple(range(nbits - count, nbits))
