"""Series and table containers for experiment output.

Experiments return these instead of printing directly, so tests can
assert on shapes/claims and the CLI / benches render them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Series:
    """One labelled curve: x positions and y values (a figure line)."""

    label: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x)
        self.y = np.asarray(self.y)
        if self.x.shape != self.y.shape:
            raise ValueError(f"series {self.label!r}: x{self.x.shape} vs y{self.y.shape}")

    def finite(self) -> "Series":
        """Drop non-finite points (for log-scale style summaries)."""
        mask = np.isfinite(self.y)
        return Series(self.label, self.x[mask], self.y[mask])

    def max_point(self) -> tuple[float, float]:
        """(x, y) of the maximum finite y."""
        clean = self.finite()
        if clean.y.size == 0:
            return float("nan"), float("nan")
        i = int(np.argmax(clean.y))
        return float(clean.x[i]), float(clean.y[i])


@dataclass
class Figure:
    """A named collection of series — one paper figure."""

    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, series: Series) -> None:
        self.series.append(series)

    def get(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series labelled {label!r} in figure {self.title!r}")

    def labels(self) -> list[str]:
        return [series.label for series in self.series]


@dataclass
class Table:
    """A named table — one paper table (or a figure's numbers)."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, values: list | dict) -> None:
        if isinstance(values, dict):
            values = [values.get(column) for column in self.columns]
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table {self.title!r} has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]
