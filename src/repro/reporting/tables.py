"""Plain-text rendering for tables and figures (terminal deliverable)."""

from __future__ import annotations

import numpy as np

from repro.reporting.series import Figure, Series, Table


def format_cell(value) -> str:
    """Scientific notation for floats, plain for everything else."""
    if isinstance(value, (float, np.floating)):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if 1e-3 <= magnitude < 1e5:
            return f"{value:.4g}"
        return f"{value:.3e}"
    return str(value)


def render_table(table: Table) -> str:
    """ASCII table with a title bar and aligned columns."""
    header = list(table.columns)
    body = [[format_cell(cell) for cell in row] for row in table.rows]
    widths = [len(name) for name in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: list[str]) -> str:
        return " | ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    rule = "-+-".join("-" * width for width in widths)
    lines = [f"== {table.title} ==", fmt_row(header), rule]
    lines.extend(fmt_row(row) for row in body)
    for note in table.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def render_series_table(figure: Figure, x_format=str) -> str:
    """Render a figure as a table: x column + one column per series."""
    table = Table(
        title=figure.title,
        columns=[figure.x_label] + figure.labels(),
    )
    if figure.series:
        base_x = figure.series[0].x
        for series in figure.series[1:]:
            if series.x.shape != base_x.shape or not np.array_equal(series.x, base_x):
                return _render_series_blocks(figure)
        for i, x in enumerate(base_x):
            table.add_row([x_format(x)] + [float(s.y[i]) for s in figure.series])
    table.notes = list(figure.notes)
    return render_table(table)


def _render_series_blocks(figure: Figure) -> str:
    """Fallback rendering when series have different x grids."""
    blocks = [f"== {figure.title} =="]
    for series in figure.series:
        blocks.append(f"-- {series.label} ({figure.x_label} -> {figure.y_label})")
        for x, y in zip(series.x, series.y):
            blocks.append(f"   {format_cell(x)} : {format_cell(float(y))}")
    for note in figure.notes:
        blocks.append(f"  note: {note}")
    return "\n".join(blocks)


def render_ascii_plot(series: Series, width: int = 64, height: int = 16,
                      log_y: bool = False) -> str:
    """Tiny ASCII scatter of one series (quick terminal visualization)."""
    clean = series.finite()
    if clean.y.size == 0:
        return f"[{series.label}: no finite points]"
    y = clean.y.astype(np.float64)
    if log_y:
        positive = y > 0
        if not np.any(positive):
            return f"[{series.label}: no positive points for log scale]"
        floor = np.min(y[positive]) / 10.0
        y = np.log10(np.maximum(y, floor))
    x = clean.x.astype(np.float64)
    grid = [[" "] * width for _ in range(height)]
    x_span = (x.max() - x.min()) or 1.0
    y_span = (y.max() - y.min()) or 1.0
    for xi, yi in zip(x, y):
        col = int((xi - x.min()) / x_span * (width - 1))
        row = int((yi - y.min()) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = [f"[{series.label}]" + (" (log10 y)" if log_y else "")]
    lines.extend("".join(row) for row in grid)
    return "\n".join(lines)
