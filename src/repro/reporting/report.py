"""Full-study report generation.

Assembles every registered experiment into one Markdown document (the
library's equivalent of the paper's evaluation section) and exports each
figure/table as CSV alongside, so the whole reproduction is a single
command: ``posit-resiliency report --out results/``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.reporting.export import write_figure_csv, write_table_csv
from repro.reporting.tables import render_series_table, render_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments import ExperimentParams


def _slug(text: str) -> str:
    return "".join(c if c.isalnum() else "-" for c in text.lower()).strip("-")


def generate_report(
    directory: str | os.PathLike,
    params: "ExperimentParams | None" = None,
    ids: list[str] | None = None,
) -> Path:
    """Run experiments and write report.md + per-figure CSVs.

    Returns the path of the written report.
    """
    # Imported here: repro.experiments itself imports repro.reporting.
    from repro.experiments import ExperimentParams, experiment_ids, get_experiment

    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    params = params or ExperimentParams()
    wanted = ids if ids is not None else experiment_ids()

    lines: list[str] = [
        "# Posit resiliency study — full reproduction report",
        "",
        f"parameters: data_size={params.data_size}, "
        f"trials_per_bit={params.trials_per_bit}, seed={params.seed}",
        "",
    ]
    total_checks = 0
    failed_checks: list[str] = []

    for exp_id in wanted:
        spec = get_experiment(exp_id)
        output = spec.run(params)
        lines.append(f"## {exp_id} — {spec.title}  [{spec.paper_ref}]")
        lines.append("")
        for i, table in enumerate(output.tables):
            csv_name = f"{exp_id}-table{i}-{_slug(table.title)[:40]}.csv"
            write_table_csv(table, out_dir / csv_name)
            lines.append("```")
            lines.append(render_table(table))
            lines.append("```")
            lines.append(f"(data: `{csv_name}`)")
            lines.append("")
        for i, figure in enumerate(output.figures):
            csv_name = f"{exp_id}-fig{i}-{_slug(figure.title)[:40]}.csv"
            write_figure_csv(figure, out_dir / csv_name)
            lines.append("```")
            lines.append(render_series_table(figure))
            lines.append("```")
            lines.append(f"(data: `{csv_name}`)")
            lines.append("")
        if output.findings:
            lines.append("**Findings**")
            lines.extend(f"- {finding}" for finding in output.findings)
            lines.append("")
        lines.append("**Checks**")
        for name, passed in output.checks.items():
            marker = "PASS" if passed else "FAIL"
            lines.append(f"- [{marker}] {name}")
            total_checks += 1
            if not passed:
                failed_checks.append(f"{exp_id}:{name}")
        lines.append("")

    lines.insert(3, f"checks: {total_checks - len(failed_checks)}/{total_checks} pass"
                 + (f" — FAILURES: {', '.join(failed_checks)}" if failed_checks else ""))
    report_path = out_dir / "report.md"
    report_path.write_text("\n".join(lines))
    return report_path
