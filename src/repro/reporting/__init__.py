"""Reporting containers and plain-text/CSV rendering."""

from repro.reporting.export import write_figure_csv, write_table_csv
from repro.reporting.report import generate_report
from repro.reporting.series import Figure, Series, Table
from repro.reporting.tables import (
    format_cell,
    render_ascii_plot,
    render_series_table,
    render_table,
)

__all__ = [
    "Figure",
    "Series",
    "Table",
    "format_cell",
    "generate_report",
    "render_ascii_plot",
    "render_series_table",
    "render_table",
    "write_figure_csv",
    "write_table_csv",
]
