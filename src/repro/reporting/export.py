"""CSV export of experiment output (tables and figures)."""

from __future__ import annotations

import csv
import os
from pathlib import Path

import numpy as np

from repro.reporting.series import Figure, Table


def write_table_csv(table: Table, path: str | os.PathLike) -> None:
    """Write a Table as plain CSV (header + rows)."""
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        for row in table.rows:
            writer.writerow(row)


def write_figure_csv(figure: Figure, path: str | os.PathLike) -> None:
    """Write a Figure as long-form CSV: series,x,y."""
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", figure.x_label, figure.y_label])
        for series in figure.series:
            for x, y in zip(series.x, series.y):
                writer.writerow([series.label, x, float(y) if np.isfinite(y) else y])
