"""Service home resolution and configuration.

The campaign service keeps its state under one *home* directory —
``$REPRO_HOME`` when set, else ``~/.repro``::

    $REPRO_HOME/
      config.json    <- this module (written by ``repro config init``)
      runs/          <- run registry (repro.service.registry)
        index.json
        <project>/<run-id>/   <- ordinary campaign run directories
      cache/         <- scratch space for future services

``config.json`` is optional: every reader falls back to the defaults
derived from the home path, so a fresh machine can ``campaign submit``
without running ``config init`` first.  ``init`` exists to make the
layout explicit, discoverable, and overridable (custom ``runs_dir`` on
a shared filesystem is exactly how multi-machine work stealing is
deployed: every worker mounts the same ``runs_dir``).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

CONFIG_NAME = "config.json"
CONFIG_VERSION = 1

#: Environment variable overriding the service home directory.
HOME_ENV = "REPRO_HOME"


def repro_home(home: str | os.PathLike | None = None) -> Path:
    """The service home: explicit argument > ``$REPRO_HOME`` > ``~/.repro``."""
    if home is not None:
        return Path(home).expanduser()
    env = os.environ.get(HOME_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".repro"


@dataclass(frozen=True)
class ServiceConfig:
    """Resolved service paths (all absolute)."""

    home: Path
    runs_dir: Path
    cache_dir: Path

    def to_json(self) -> dict:
        return {
            "config_version": CONFIG_VERSION,
            "runs_dir": str(self.runs_dir),
            "cache_dir": str(self.cache_dir),
        }


def _defaults(home: Path) -> ServiceConfig:
    return ServiceConfig(home=home, runs_dir=home / "runs", cache_dir=home / "cache")


def load_config(home: str | os.PathLike | None = None) -> ServiceConfig:
    """Read ``config.json`` under the resolved home, defaulting sanely.

    A missing file yields the default layout; a corrupt file raises
    (silently ignoring it could scatter runs across two registries).
    """
    root = repro_home(home)
    path = root / CONFIG_NAME
    if not path.is_file():
        return _defaults(root)
    payload = json.loads(path.read_text(encoding="utf-8"))
    defaults = _defaults(root)
    return ServiceConfig(
        home=root,
        runs_dir=Path(payload.get("runs_dir", defaults.runs_dir)),
        cache_dir=Path(payload.get("cache_dir", defaults.cache_dir)),
    )


def init_config(
    home: str | os.PathLike | None = None, *, force: bool = False
) -> ServiceConfig:
    """Create the service home: directories plus ``config.json``.

    Idempotent: re-running against an initialised home is a no-op unless
    ``force=True`` rewrites the config file with current defaults.
    """
    root = repro_home(home)
    config = _defaults(root)
    root.mkdir(parents=True, exist_ok=True)
    config.runs_dir.mkdir(parents=True, exist_ok=True)
    config.cache_dir.mkdir(parents=True, exist_ok=True)
    path = root / CONFIG_NAME
    if force or not path.is_file():
        payload = {"created_at": time.time(), **config.to_json()}
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        os.replace(tmp, path)
    return load_config(root)
