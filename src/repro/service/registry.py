"""The run registry: named, project-scoped campaign runs under one home.

A *registered* run is an ordinary campaign run directory (manifest,
shards, events — everything ``repro.runner`` writes) that additionally
lives under the service's ``runs_dir`` and has a row in ``index.json``::

    runs/
      index.json                 <- {"runs": {run_id: entry}, "next": N}
      default/posit16-0001/      <- <project>/<run_id>/ run directory

``submit_run`` plans the campaign and writes its manifest in *submitted*
state (:meth:`repro.runner.CampaignRunner.submit`) without computing
anything; any number of ``campaign worker`` processes — on any machine
that mounts the same filesystem — then claim shards through lease files
until the run completes.  The registry only ever records pointers and
submission-time metadata; run *state* always comes fresh from the run
directory itself (:func:`run_status_payload`), so the index can never
disagree with the ground truth.

Datasets must be registry presets: the manifest's provenance record is
what lets a worker on another machine regenerate the exact field
(fingerprint-checked) without shipping arrays around.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path

from repro.service.config import ServiceConfig, load_config

INDEX_NAME = "index.json"
INDEX_VERSION = 1

#: Canonical machine-readable status schema emitted by ``campaign get
#: --json`` and ``campaign status --json`` (locked by tests).
STATUS_SCHEMA = "repro.run-status/1"

_SAFE_COMPONENT = re.compile(r"[^A-Za-z0-9_.=-]+")


class ServiceError(RuntimeError):
    """A registry operation that cannot proceed (unknown run, bad input)."""


def _slug(text: str) -> str:
    """A filesystem-safe path component from free text."""
    cleaned = _SAFE_COMPONENT.sub("-", text.strip()).strip("-.")
    return cleaned or "run"


@dataclass(frozen=True)
class RunEntry:
    """One registry row: identity of a submitted run and where it lives."""

    run_id: str
    project: str
    run_dir: str
    field: str
    target: str
    label: str
    submitted_at: float

    def to_json(self) -> dict:
        return {
            "run_id": self.run_id,
            "project": self.project,
            "run_dir": self.run_dir,
            "field": self.field,
            "target": self.target,
            "label": self.label,
            "submitted_at": self.submitted_at,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RunEntry":
        return cls(
            run_id=payload["run_id"],
            project=payload.get("project", "default"),
            run_dir=payload["run_dir"],
            field=payload.get("field", ""),
            target=payload.get("target", ""),
            label=payload.get("label", ""),
            submitted_at=float(payload.get("submitted_at", 0.0)),
        )


class RunRegistry:
    """Project-scoped index of campaign runs under the service home."""

    def __init__(self, home: str | os.PathLike | None = None):
        self.config: ServiceConfig = load_config(home)
        self.runs_dir: Path = self.config.runs_dir
        self.index_path: Path = self.runs_dir / INDEX_NAME

    # -- index --------------------------------------------------------------

    def _read_index(self) -> dict:
        if not self.index_path.is_file():
            return {"index_version": INDEX_VERSION, "runs": {}, "next": 1}
        return json.loads(self.index_path.read_text(encoding="utf-8"))

    def _write_index(self, index: dict) -> None:
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        tmp = self.index_path.with_name(self.index_path.name + ".tmp")
        tmp.write_text(json.dumps(index, indent=2), encoding="utf-8")
        os.replace(tmp, self.index_path)

    # -- resource verbs -----------------------------------------------------

    def submit_run(
        self,
        field: str,
        target: str,
        *,
        trials_per_bit: int,
        bits: tuple[int, ...] | None = None,
        seed: int = 12345,
        size: int = 10_000,
        data_seed: int = 777,
        label: str = "",
        project: str = "default",
        trace: bool = False,
        fault: str = "single",
    ) -> RunEntry:
        """Register and submit a campaign without executing any shard.

        The dataset is a registry preset regenerated (and fingerprint-
        checked) by every worker from the manifest's provenance record —
        the submitting machine never ships arrays to the workers.

        ``trace`` records distributed tracing in the manifest, so every
        worker that later claims shards writes trace spans and metrics
        time-series without needing ``REPRO_TRACE`` set on its machine.

        ``fault`` is a fault-model spec (:mod:`repro.inject.faultspec`);
        it joins the manifest identity, so every worker that claims a
        shard injects under the same model.
        """
        from repro.datasets.registry import get as get_preset
        from repro.inject.campaign import CampaignConfig
        from repro.runner import CampaignRunner

        data = get_preset(field).generate(seed=int(data_seed), size=int(size))
        index = self._read_index()
        seq = int(index.get("next", 1))
        run_id = f"{_slug(target)}-{seq:04d}"
        run_dir = self.runs_dir / _slug(project) / run_id
        if run_dir.exists():
            raise ServiceError(f"registry run directory {run_dir} already exists")

        config = CampaignConfig(
            trials_per_bit=int(trials_per_bit),
            bits=tuple(bits) if bits is not None else None,
            seed=int(seed),
            fault=fault,
        )
        runner = CampaignRunner(
            data,
            target,
            config,
            label=label,
            run_dir=run_dir,
            dataset={
                "kind": "preset",
                "field": field,
                "seed": int(data_seed),
                "size": int(size),
            },
            trace=True if trace else None,
        )
        runner.submit()

        entry = RunEntry(
            run_id=run_id,
            project=project,
            run_dir=str(run_dir),
            field=field,
            target=runner.target.name,
            label=label,
            submitted_at=time.time(),
        )
        index["next"] = seq + 1
        index.setdefault("runs", {})[run_id] = entry.to_json()
        self._write_index(index)
        return entry

    def submit_app_run(
        self,
        app: str,
        target: str,
        *,
        grid: int = 16,
        iterations: tuple[int, ...] = (10,),
        trials_per_cell: int = 3,
        bits: tuple[int, ...] | None = None,
        seed: int = 12345,
        fault: str = "single",
        sdc_threshold: float = 1e-3,
        label: str = "",
        project: str = "default",
        trace: bool = False,
    ) -> RunEntry:
        """Register and submit an app campaign without executing any cell.

        App campaigns need no dataset preset: the manifest's app payload
        (solver, grid, injection schedule, thresholds) is the complete
        provenance, and every worker rebuilds the Poisson problem from
        it.  The registry row's ``field`` is ``app/<name>`` so listings
        distinguish app campaigns from value campaigns at a glance.
        """
        from repro.apps.campaign import AppCampaignConfig, AppCampaignRunner

        config = AppCampaignConfig(
            app=app,
            grid=int(grid),
            iterations=tuple(iterations),
            trials_per_cell=int(trials_per_cell),
            bits=tuple(bits) if bits is not None else None,
            seed=int(seed),
            fault=fault,
            sdc_threshold=float(sdc_threshold),
        )
        index = self._read_index()
        seq = int(index.get("next", 1))
        run_id = f"{_slug(app)}-{_slug(target)}-{seq:04d}"
        run_dir = self.runs_dir / _slug(project) / run_id
        if run_dir.exists():
            raise ServiceError(f"registry run directory {run_dir} already exists")

        runner = AppCampaignRunner(
            config,
            target,
            label=label or app,
            run_dir=run_dir,
            trace=True if trace else None,
        )
        runner.submit()

        entry = RunEntry(
            run_id=run_id,
            project=project,
            run_dir=str(run_dir),
            field=f"app/{app}",
            target=runner.target.name,
            label=label or app,
            submitted_at=time.time(),
        )
        index["next"] = seq + 1
        index.setdefault("runs", {})[run_id] = entry.to_json()
        self._write_index(index)
        return entry

    def list_runs(self, project: str | None = None) -> list[RunEntry]:
        """All registered runs, oldest first, optionally project-filtered."""
        index = self._read_index()
        entries = [RunEntry.from_json(row) for row in index.get("runs", {}).values()]
        if project is not None:
            entries = [entry for entry in entries if entry.project == project]
        return sorted(entries, key=lambda entry: entry.submitted_at)

    def get(self, run_id: str) -> RunEntry:
        index = self._read_index()
        row = index.get("runs", {}).get(run_id)
        if row is None:
            known = ", ".join(sorted(index.get("runs", {}))) or "none registered"
            raise ServiceError(f"unknown run id {run_id!r} (known runs: {known})")
        return RunEntry.from_json(row)

    def resolve_run_dir(self, ref: str | os.PathLike) -> Path:
        """A run directory from either a registry id or a filesystem path."""
        path = Path(ref)
        if (path / "manifest.json").is_file():
            return path
        try:
            return Path(self.get(str(ref)).run_dir)
        except ServiceError:
            if path.exists():
                raise ServiceError(
                    f"{path} exists but holds no campaign manifest"
                ) from None
            raise

    def cancel(self, ref: str | os.PathLike, *, reason: str = "") -> Path:
        """Drop the ``CANCELLED`` sentinel into a run's directory.

        Cooperative, not forceful: workers notice the sentinel at their
        next claim loop, stop claiming, and exit; shards already
        computed stay on disk and the run can still be folded/resumed.
        """
        from repro.runner.leases import request_cancel

        run_dir = self.resolve_run_dir(ref)
        request_cancel(run_dir, reason=reason)
        return run_dir


def run_status_payload(run_dir: str | os.PathLike) -> dict:
    """The canonical machine-readable state of one run directory.

    One schema for every surface: ``campaign status --json``,
    ``campaign get --json``, and the watch feed's terminal summary all
    emit exactly this mapping (``schema`` key = :data:`STATUS_SCHEMA`).
    """
    from repro.runner import run_status

    status = run_status(run_dir)
    return {
        "schema": STATUS_SCHEMA,
        "run_dir": status.run_dir,
        "target": status.target_spec,
        "fault_model": status.fault,
        "app": status.app,
        "label": status.label,
        "status": status.status,
        "executor": status.executor,
        "complete": status.complete,
        "cancelled": status.cancelled,
        "shards": {"done": status.shards_done, "total": status.shards_total},
        "trials": {"done": status.trials_done, "total": status.trials_total},
        "pending_bits": list(status.pending_bits),
        "missing_shard_files": list(status.missing_shard_files),
        "quarantined_files": list(status.quarantined_files),
        "workers": [dict(worker) for worker in status.workers],
    }
