"""The campaign service: a run registry, resource verbs, and a run feed.

``repro.service`` turns campaign run directories into managed resources
under one home directory (``$REPRO_HOME`` or ``~/.repro``):

- :mod:`repro.service.config` — home resolution and ``config init``;
- :mod:`repro.service.registry` — project-scoped run registry behind
  the ``campaign submit/list/get/cancel`` CLI verbs, plus the canonical
  ``repro.run-status/1`` JSON payload;
- :mod:`repro.service.watch` — the streamable event feed behind
  ``campaign watch``.

Execution stays entirely in :mod:`repro.runner`: a registered run is an
ordinary run directory that work-stealing ``campaign worker`` processes
(local or on any machine sharing the filesystem) drive to completion.
The service layer never computes; it names, submits, observes, and
cancels.
"""

from repro.service.config import (
    CONFIG_NAME,
    HOME_ENV,
    ServiceConfig,
    init_config,
    load_config,
    repro_home,
)
from repro.service.registry import (
    STATUS_SCHEMA,
    RunEntry,
    RunRegistry,
    ServiceError,
    run_status_payload,
)
from repro.service.watch import (
    WATCH_CANCELLED,
    WATCH_DONE,
    WATCH_EOF,
    WATCH_IDLE,
    format_event,
    watch_run,
)

__all__ = [
    "CONFIG_NAME",
    "HOME_ENV",
    "RunEntry",
    "RunRegistry",
    "STATUS_SCHEMA",
    "ServiceConfig",
    "ServiceError",
    "WATCH_CANCELLED",
    "WATCH_DONE",
    "WATCH_EOF",
    "WATCH_IDLE",
    "format_event",
    "init_config",
    "load_config",
    "repro_home",
    "run_status_payload",
    "watch_run",
]
