"""The campaign service: a run registry, resource verbs, and a run feed.

``repro.service`` turns campaign run directories into managed resources
under one home directory (``$REPRO_HOME`` or ``~/.repro``):

- :mod:`repro.service.config` — home resolution and ``config init``;
- :mod:`repro.service.registry` — project-scoped run registry behind
  the ``campaign submit/list/get/cancel`` CLI verbs, plus the canonical
  ``repro.run-status/1`` JSON payload;
- :mod:`repro.service.watch` — the streamable event feed behind
  ``campaign watch``, with fleet throughput and stall detection;
- :mod:`repro.service.top` — the refresh-in-place fleet view behind
  ``campaign top``: per-worker throughput, lease state, stragglers.

Execution stays entirely in :mod:`repro.runner`: a registered run is an
ordinary run directory that work-stealing ``campaign worker`` processes
(local or on any machine sharing the filesystem) drive to completion.
The service layer never computes; it names, submits, observes, and
cancels.
"""

from repro.service.config import (
    CONFIG_NAME,
    HOME_ENV,
    ServiceConfig,
    init_config,
    load_config,
    repro_home,
)
from repro.service.registry import (
    STATUS_SCHEMA,
    RunEntry,
    RunRegistry,
    ServiceError,
    run_status_payload,
)
from repro.service.top import FleetSnapshot, campaign_top, fleet_snapshot, render_top
from repro.service.watch import (
    WATCH_CANCELLED,
    WATCH_DONE,
    WATCH_EOF,
    WATCH_IDLE,
    detect_stall,
    format_event,
    throughput_from_events,
    watch_run,
)

__all__ = [
    "CONFIG_NAME",
    "FleetSnapshot",
    "HOME_ENV",
    "RunEntry",
    "RunRegistry",
    "STATUS_SCHEMA",
    "ServiceConfig",
    "ServiceError",
    "WATCH_CANCELLED",
    "WATCH_DONE",
    "WATCH_EOF",
    "WATCH_IDLE",
    "campaign_top",
    "detect_stall",
    "fleet_snapshot",
    "format_event",
    "init_config",
    "load_config",
    "render_top",
    "repro_home",
    "run_status_payload",
    "throughput_from_events",
    "watch_run",
]
