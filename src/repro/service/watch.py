"""A streamable run feed: tail ``events.jsonl`` as workers append to it.

``watch_run`` polls a run directory's event log, rendering each *new*
event as one line — essentially ``tail -f`` with knowledge of the run's
lifecycle.  It reuses :func:`repro.runner.events.read_event_log`, so the
feed inherits its truncated-tail tolerance: a worker killed mid-write
leaves a partial final line that the next poll simply re-reads once the
bytes complete.  Because the log is append-only and every event is one
atomic line, re-reading from the start and slicing past what was already
shown is race-free (no inotify, no file offsets to invalidate).

The feed terminates when the run reaches a terminal state
(``until_done``), when the event log goes quiet past ``timeout``
seconds, or immediately after one pass when ``follow=False``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.runner.events import read_event_log
from repro.runner.leases import cancel_requested
from repro.runner.manifest import RUN_COMPLETED, RunManifest

#: watch_run exit statuses (mirrored by ``campaign watch``'s exit code).
WATCH_DONE = "done"  # run completed
WATCH_CANCELLED = "cancelled"  # CANCELLED sentinel appeared
WATCH_IDLE = "idle"  # no new events within the timeout
WATCH_EOF = "eof"  # single pass finished (follow=False)

#: Event kinds that count as forward progress for stall detection.
PROGRESS_KINDS = frozenset(
    {
        "run_submitted",
        "run_start",
        "worker_start",
        "shard_start",
        "shard_claimed",
        "shard_finish",
        "shard_adopted",
        "shard_skipped",
        "run_finish",
    }
)


def throughput_from_events(
    events: list[dict], *, window: float = 120.0, now: float | None = None
) -> dict:
    """Derive fleet throughput from an event stream.

    Events interleave from many writers (coordinator + workers), each
    carrying its own view of the monotone progress counters, so the
    stream-wide value of each counter is its maximum.  The rate comes
    from the ``(ts, trials_done)`` slope over the trailing ``window``
    seconds of events — recent enough to track a changing fleet, long
    enough to smooth shard granularity — and the ETA projects the
    remaining trials at that rate.  Active workers count
    ``worker_start`` minus ``worker_exit`` identities when the run has
    standalone workers, else the coordinator's reported ``jobs``.
    """
    stamped = [e for e in events if isinstance(e.get("ts"), (int, float))]
    summary = {
        "trials_done": 0,
        "trials_total": 0,
        "shards_done": 0,
        "shards_total": 0,
        "trials_per_sec": None,
        "eta_seconds": None,
        "active_workers": 0,
        "last_event_age": None,
    }
    if not stamped:
        return summary
    for key in ("trials_done", "trials_total", "shards_done", "shards_total"):
        summary[key] = max(int(e.get(key) or 0) for e in stamped)
    last_ts = max(float(e["ts"]) for e in stamped)
    if now is not None:
        summary["last_event_age"] = round(max(now - last_ts, 0.0), 3)

    started: set[str] = set()
    exited: set[str] = set()
    for event in stamped:
        worker = (event.get("detail") or {}).get("worker")
        if not worker:
            continue
        if event.get("kind") == "worker_start":
            started.add(worker)
        elif event.get("kind") == "worker_exit":
            exited.add(worker)
    if started:
        summary["active_workers"] = len(started - exited)
    else:
        summary["active_workers"] = max(int(e.get("jobs") or 1) for e in stamped)

    points = sorted({(float(e["ts"]), int(e.get("trials_done") or 0)) for e in stamped})
    end_ts, end_done = points[-1][0], summary["trials_done"]
    in_window = [p for p in points if p[0] >= end_ts - window]
    start_ts, start_done = in_window[0] if in_window else points[0]
    if end_ts > start_ts and end_done > start_done:
        rate = (end_done - start_done) / (end_ts - start_ts)
        summary["trials_per_sec"] = round(rate, 3)
        remaining = summary["trials_total"] - end_done
        if remaining > 0:
            summary["eta_seconds"] = round(remaining / rate, 3)
        elif summary["trials_total"]:
            summary["eta_seconds"] = 0.0
    return summary


def detect_stall(
    events: list[dict], *, stall_after: float = 30.0, now: float | None = None
) -> tuple[bool, float]:
    """``(stalled, quiet_seconds)``: has forward progress flatlined?

    A run is stalled when its newest progress-class event (see
    :data:`PROGRESS_KINDS`) is older than ``stall_after`` seconds and no
    terminal event has been written.  Finished or interrupted runs never
    count as stalled — quiet is their normal state.
    """
    now = now if now is not None else time.time()
    for event in reversed(events):
        if event.get("kind") in ("run_finish", "run_interrupted"):
            return False, 0.0
    stamps = [
        float(e["ts"])
        for e in events
        if e.get("kind") in PROGRESS_KINDS and isinstance(e.get("ts"), (int, float))
    ]
    if not stamps:
        return False, 0.0
    quiet = max(now - max(stamps), 0.0)
    return quiet > stall_after, round(quiet, 3)


def format_event(event: dict) -> str:
    """One human-readable feed line for an event dict."""
    kind = event.get("kind", "?")
    parts = [f"[{event.get('elapsed', 0.0):8.2f}s]", f"{kind:<16}"]
    if event.get("bit") is not None:
        parts.append(f"bit={event['bit']}")
    shards_total = event.get("shards_total")
    if shards_total:
        parts.append(f"{event.get('shards_done', 0)}/{shards_total} shards")
    worker = (event.get("detail") or {}).get("worker")
    if worker:
        parts.append(f"worker={worker}")
    if event.get("error"):
        parts.append(f"error={event['error']}")
    return " ".join(parts)


def watch_run(
    run_dir: str | os.PathLike,
    *,
    follow: bool = True,
    until_done: bool = False,
    timeout: float | None = None,
    poll_interval: float = 0.25,
    stream=None,
    json_mode: bool = False,
    stall_after: float | None = None,
) -> str:
    """Stream a run's event feed; returns one of the ``WATCH_*`` statuses.

    ``until_done`` keeps following (ignoring event-log quiet spells)
    until the run completes or is cancelled — with ``timeout`` as the
    hard cap on *total* silence, so a watch over a dead run still ends.

    Every batch of new events is followed by a throughput summary
    (trials/s, ETA, active workers — :func:`throughput_from_events`);
    when progress flatlines past ``stall_after`` seconds (default: 30
    for ``until_done`` watches, off otherwise) a stall warning fires
    once per quiet spell (:func:`detect_stall`).  ``json_mode`` replaces
    every human line with one JSON object per line: raw events
    verbatim, plus ``{"kind": "watch_throughput" | "watch_stall" |
    "watch_done" | "watch_cancelled" | "watch_idle", ...}`` records.
    """
    directory = Path(run_dir)
    log_path = RunManifest.event_log_path(directory)
    out = stream if stream is not None else sys.stdout
    shown = 0
    last_news = time.monotonic()
    if stall_after is None and until_done:
        stall_after = 30.0
    stall_warned = False

    def emit_meta(kind: str, text: str, **payload) -> None:
        if json_mode:
            print(json.dumps({"kind": kind, **payload}, sort_keys=True), file=out)
        else:
            print(text, file=out)

    def emit_throughput(events: list[dict]) -> None:
        summary = throughput_from_events(events, now=time.time())
        if json_mode:
            print(
                json.dumps({"kind": "watch_throughput", **summary}, sort_keys=True),
                file=out,
            )
            return
        parts = [
            f"trials {summary['trials_done']}/{summary['trials_total']}",
            f"{summary['active_workers']} worker(s)",
        ]
        if summary["trials_per_sec"] is not None:
            parts.insert(0, f"{summary['trials_per_sec']:,.1f} trials/s")
        if summary["eta_seconds"] is not None:
            parts.append(f"ETA {summary['eta_seconds']:.0f}s")
        print("[watch] " + " · ".join(parts), file=out)

    while True:
        events = read_event_log(log_path) if log_path.is_file() else []
        if len(events) > shown:
            for event in events[shown:]:
                if json_mode:
                    print(json.dumps(event, sort_keys=True), file=out)
                else:
                    print(format_event(event), file=out)
            if any(e.get("kind") in PROGRESS_KINDS for e in events[shown:]):
                emit_throughput(events)
                stall_warned = False
            shown = len(events)
            last_news = time.monotonic()
        elif stall_after is not None and not stall_warned:
            stalled, quiet = detect_stall(events, stall_after=stall_after)
            if stalled:
                stall_warned = True
                emit_meta(
                    "watch_stall",
                    f"[watch] WARNING: throughput flatlined — no progress "
                    f"for {quiet:.0f}s",
                    quiet_seconds=quiet,
                    stall_after=stall_after,
                )

        manifest_done = False
        manifest_path = directory / "manifest.json"
        if manifest_path.is_file():
            try:
                manifest_done = RunManifest.load(directory).status == RUN_COMPLETED
            except Exception:
                manifest_done = False  # racing an atomic rewrite; retry next poll
        if manifest_done and shown == len(events):
            emit_meta(
                "watch_done",
                f"[watch] run completed ({shown} event(s))",
                events=shown,
            )
            return WATCH_DONE
        if cancel_requested(directory):
            emit_meta("watch_cancelled", "[watch] run cancelled")
            return WATCH_CANCELLED

        if not follow:
            return WATCH_EOF
        quiet = time.monotonic() - last_news
        if timeout is not None and quiet > timeout:
            emit_meta(
                "watch_idle",
                f"[watch] no events for {quiet:.1f}s; giving up",
                quiet_seconds=round(quiet, 3),
            )
            return WATCH_IDLE
        if not until_done and timeout is None and quiet > 10 * poll_interval:
            # Plain `watch` without --until-done follows while events are
            # flowing and stops shortly after they dry up.
            return WATCH_IDLE
        time.sleep(poll_interval)
