"""A streamable run feed: tail ``events.jsonl`` as workers append to it.

``watch_run`` polls a run directory's event log, rendering each *new*
event as one line — essentially ``tail -f`` with knowledge of the run's
lifecycle.  It reuses :func:`repro.runner.events.read_event_log`, so the
feed inherits its truncated-tail tolerance: a worker killed mid-write
leaves a partial final line that the next poll simply re-reads once the
bytes complete.  Because the log is append-only and every event is one
atomic line, re-reading from the start and slicing past what was already
shown is race-free (no inotify, no file offsets to invalidate).

The feed terminates when the run reaches a terminal state
(``until_done``), when the event log goes quiet past ``timeout``
seconds, or immediately after one pass when ``follow=False``.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

from repro.runner.events import read_event_log
from repro.runner.leases import cancel_requested
from repro.runner.manifest import RUN_COMPLETED, RunManifest

#: watch_run exit statuses (mirrored by ``campaign watch``'s exit code).
WATCH_DONE = "done"  # run completed
WATCH_CANCELLED = "cancelled"  # CANCELLED sentinel appeared
WATCH_IDLE = "idle"  # no new events within the timeout
WATCH_EOF = "eof"  # single pass finished (follow=False)


def format_event(event: dict) -> str:
    """One human-readable feed line for an event dict."""
    kind = event.get("kind", "?")
    parts = [f"[{event.get('elapsed', 0.0):8.2f}s]", f"{kind:<16}"]
    if event.get("bit") is not None:
        parts.append(f"bit={event['bit']}")
    shards_total = event.get("shards_total")
    if shards_total:
        parts.append(f"{event.get('shards_done', 0)}/{shards_total} shards")
    worker = (event.get("detail") or {}).get("worker")
    if worker:
        parts.append(f"worker={worker}")
    if event.get("error"):
        parts.append(f"error={event['error']}")
    return " ".join(parts)


def watch_run(
    run_dir: str | os.PathLike,
    *,
    follow: bool = True,
    until_done: bool = False,
    timeout: float | None = None,
    poll_interval: float = 0.25,
    stream=None,
) -> str:
    """Stream a run's event feed; returns one of the ``WATCH_*`` statuses.

    ``until_done`` keeps following (ignoring event-log quiet spells)
    until the run completes or is cancelled — with ``timeout`` as the
    hard cap on *total* silence, so a watch over a dead run still ends.
    """
    directory = Path(run_dir)
    log_path = RunManifest.event_log_path(directory)
    out = stream if stream is not None else sys.stdout
    shown = 0
    last_news = time.monotonic()

    while True:
        events = read_event_log(log_path) if log_path.is_file() else []
        if len(events) > shown:
            for event in events[shown:]:
                print(format_event(event), file=out)
            shown = len(events)
            last_news = time.monotonic()

        manifest_done = False
        manifest_path = directory / "manifest.json"
        if manifest_path.is_file():
            try:
                manifest_done = RunManifest.load(directory).status == RUN_COMPLETED
            except Exception:
                manifest_done = False  # racing an atomic rewrite; retry next poll
        if manifest_done and shown == len(events):
            print(f"[watch] run completed ({shown} event(s))", file=out)
            return WATCH_DONE
        if cancel_requested(directory):
            print("[watch] run cancelled", file=out)
            return WATCH_CANCELLED

        if not follow:
            return WATCH_EOF
        quiet = time.monotonic() - last_news
        if timeout is not None and quiet > timeout:
            print(f"[watch] no events for {quiet:.1f}s; giving up", file=out)
            return WATCH_IDLE
        if not until_done and timeout is None and quiet > 10 * poll_interval:
            # Plain `watch` without --until-done follows while events are
            # flowing and stops shortly after they dry up.
            return WATCH_IDLE
        time.sleep(poll_interval)
