"""``campaign top``: a live, refresh-in-place view of a distributed run.

One :func:`fleet_snapshot` joins everything the run directory already
records — the manifest, the multi-writer event log, lease files, done
records, and the per-worker time-series under ``metrics/`` — into a
single queryable picture: per-worker throughput and RSS, active and
stolen leases, straggler shards, and stall state.  :func:`render_top`
draws it as a text frame and :func:`campaign_top` refreshes the frame
in place on a TTY (plain repeated frames on pipes), exiting when the
run reaches a terminal state.

Straggler detection: a completed shard is an outlier when its duration
is at least the fleet's p95 *and* more than ``straggler_factor`` times
the median (both conditions, so uniform fleets flag nothing); an
in-flight lease older than ``straggler_factor`` times the median shard
duration is flagged before it even completes.  The same
:func:`repro.service.watch.detect_stall` rule that alarms ``campaign
watch`` marks the whole run stalled when progress flatlines.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.runner.events import read_event_log
from repro.runner.leases import active_leases, cancel_requested, read_done_records
from repro.runner.manifest import RUN_COMPLETED, SHARD_COMPLETED, RunManifest
from repro.service.watch import detect_stall, throughput_from_events
from repro.telemetry import read_metrics
from repro.telemetry.humanize import format_duration
from repro.telemetry.timeseries import latest_points


@dataclass(frozen=True)
class FleetSnapshot:
    """One observation of a run's whole fleet."""

    run_dir: str
    run_id: str
    target: str
    status: str
    cancelled: bool
    generated_at: float
    shards_done: int
    shards_total: int
    trials_done: int
    trials_total: int
    trials_per_sec: float | None
    eta_seconds: float | None
    active_workers: int
    leases_active: int
    leases_stolen: int
    workers: tuple[dict, ...] = ()
    stragglers: tuple[dict, ...] = ()
    stalled: bool = False
    stall_seconds: float = 0.0
    trace_id: str | None = None
    extra: dict = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.cancelled or self.status == RUN_COMPLETED

    def to_json(self) -> dict:
        return {
            "schema": "repro.fleet-snapshot/1",
            "run_dir": self.run_dir,
            "run_id": self.run_id,
            "target": self.target,
            "status": self.status,
            "cancelled": self.cancelled,
            "generated_at": self.generated_at,
            "shards_done": self.shards_done,
            "shards_total": self.shards_total,
            "trials_done": self.trials_done,
            "trials_total": self.trials_total,
            "trials_per_sec": self.trials_per_sec,
            "eta_seconds": self.eta_seconds,
            "active_workers": self.active_workers,
            "leases_active": self.leases_active,
            "leases_stolen": self.leases_stolen,
            "workers": list(self.workers),
            "stragglers": list(self.stragglers),
            "stalled": self.stalled,
            "stall_seconds": self.stall_seconds,
            "trace_id": self.trace_id,
        }


def _straggler_threshold(durations: list[float], factor: float) -> float | None:
    """The duration above which a shard counts as a straggler.

    Requires at least four samples (p95 of fewer is just the max) and
    both conditions — ``>= p95`` and ``> factor × median`` — so a
    uniform fleet never flags its slowest member.
    """
    if len(durations) < 4:
        return None
    arr = np.asarray(durations, dtype=float)
    median = float(np.median(arr))
    p95 = float(np.quantile(arr, 0.95))
    if median <= 0.0:
        return None
    return max(p95, factor * median)


def fleet_snapshot(
    run_dir: str | os.PathLike,
    *,
    straggler_factor: float = 2.0,
    stall_after: float = 30.0,
    now: float | None = None,
) -> FleetSnapshot:
    """Join the run directory's records into one fleet observation."""
    directory = Path(run_dir)
    manifest = RunManifest.load(directory)
    log_path = RunManifest.event_log_path(directory)
    events = read_event_log(log_path) if log_path.is_file() else []
    now = now if now is not None else time.time()
    summary = throughput_from_events(events, now=now)
    stalled, stall_seconds = detect_stall(events, stall_after=stall_after, now=now)

    done = read_done_records(directory)
    leases = active_leases(directory)
    series = read_metrics(directory)
    latest = latest_points(series)

    # Per-worker accounting: done records give completed work, events
    # give claims/steals/liveness, the metrics series gives live gauges.
    workers: dict[str, dict] = {}

    def worker_row(name: str) -> dict:
        return workers.setdefault(
            name,
            {
                "worker": name,
                "shards_done": 0,
                "trials_done": 0,
                "claims": 0,
                "steals": 0,
                "trials_per_sec": None,
                "rss_bytes": None,
                "last_seen_age": None,
                "busy_seconds": 0.0,
                "status": "unknown",
            },
        )

    durations: list[float] = []
    duration_by_bit: dict[int, tuple[str, float]] = {}
    for bit, record in done.items():
        name = str(record.get("worker") or "?")
        row = worker_row(name)
        row["shards_done"] += 1
        row["trials_done"] += int(record.get("trials") or 0)
        duration = float(record.get("duration") or 0.0)
        row["busy_seconds"] += duration
        durations.append(duration)
        duration_by_bit[bit] = (name, duration)

    # Manifest shard states cover serial/pool runs with no done records.
    for bit, state in manifest.shards.items():
        if bit in duration_by_bit or state.duration is None:
            continue
        name = str(state.worker or "coordinator")
        if state.status == SHARD_COMPLETED:
            row = worker_row(name)
            row["shards_done"] += 1
            row["trials_done"] += int(state.trials)
            row["busy_seconds"] += float(state.duration)
            durations.append(float(state.duration))
            duration_by_bit[bit] = (name, float(state.duration))

    stolen_total = 0
    trace_id = None
    for event in events:
        kind = event.get("kind")
        detail = event.get("detail") or {}
        name = detail.get("worker")
        if event.get("trace_id") and trace_id is None:
            trace_id = event["trace_id"]
        if kind == "lease_stolen":
            stolen_total += 1
            if name:
                worker_row(name)["steals"] += 1
        elif kind == "shard_claimed" and name:
            worker_row(name)["claims"] += 1
        elif kind == "worker_start" and name:
            worker_row(name)["status"] = "running"
        elif kind == "worker_exit" and name:
            worker_row(name)["status"] = str(detail.get("status") or "exited")

    for name, point in latest.items():
        row = worker_row(name)
        if point.get("trials_per_sec") is not None:
            row["trials_per_sec"] = float(point["trials_per_sec"])
        if point.get("rss_bytes") is not None:
            row["rss_bytes"] = int(point["rss_bytes"])
        row["last_seen_age"] = round(max(now - float(point["ts"]), 0.0), 3)
        # A worker whose last sample predates the stall window is gone.
        if row["status"] == "unknown":
            row["status"] = "running" if row["last_seen_age"] < stall_after else "quiet"

    stragglers: list[dict] = []
    threshold = _straggler_threshold(durations, straggler_factor)
    if threshold is not None:
        median = float(np.median(np.asarray(durations)))
        for bit, (name, duration) in sorted(duration_by_bit.items()):
            if duration >= threshold and duration > straggler_factor * median:
                stragglers.append(
                    {
                        "bit": bit,
                        "worker": name,
                        "duration": round(duration, 6),
                        "median": round(median, 6),
                        "state": "completed",
                    }
                )
        for lease in leases:
            if float(lease["age_seconds"]) > straggler_factor * median:
                stragglers.append(
                    {
                        "bit": lease["bit"],
                        "worker": lease["worker"],
                        "duration": round(float(lease["age_seconds"]), 6),
                        "median": round(median, 6),
                        "state": "in-flight",
                    }
                )

    shards_done = max(summary["shards_done"], len(manifest.completed_bits()), len(done))
    trials_by_bit = {bit: state.trials for bit, state in manifest.shards.items()}
    done_bits = set(manifest.completed_bits()) | set(done)
    trials_done = max(
        summary["trials_done"],
        sum(trials_by_bit.get(bit, 0) for bit in done_bits),
    )
    return FleetSnapshot(
        run_dir=str(directory),
        run_id=directory.name,
        target=manifest.target_spec,
        status=manifest.status,
        cancelled=cancel_requested(directory),
        generated_at=now,
        shards_done=shards_done,
        shards_total=len(manifest.shards),
        trials_done=trials_done,
        trials_total=manifest.trials_total,
        trials_per_sec=summary["trials_per_sec"],
        eta_seconds=summary["eta_seconds"],
        active_workers=summary["active_workers"],
        leases_active=len(leases),
        leases_stolen=stolen_total,
        workers=tuple(
            workers[name] for name in sorted(workers, key=lambda n: (n == "?", n))
        ),
        stragglers=tuple(stragglers),
        stalled=stalled,
        stall_seconds=stall_seconds,
        trace_id=trace_id,
    )


def _fmt_bytes(value) -> str:
    if value is None:
        return "-"
    value = float(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:,.0f}{unit}" if unit == "B" else f"{value:,.1f}{unit}"
        value /= 1024
    return f"{value:,.1f}GiB"


def render_top(snapshot: FleetSnapshot) -> str:
    """The ``campaign top`` frame for one fleet snapshot."""
    lines = [
        f"run {snapshot.run_id} · {snapshot.target} · status {snapshot.status}"
        + (" [CANCELLED]" if snapshot.cancelled else ""),
        f"shards {snapshot.shards_done}/{snapshot.shards_total}"
        f" · trials {snapshot.trials_done}/{snapshot.trials_total}"
        + (
            f" · {snapshot.trials_per_sec:,.1f} trials/s"
            if snapshot.trials_per_sec is not None
            else ""
        )
        + (
            f" · ETA {format_duration(snapshot.eta_seconds)}"
            if snapshot.eta_seconds
            else ""
        ),
        f"workers {snapshot.active_workers} active"
        f" · leases {snapshot.leases_active} active"
        f" / {snapshot.leases_stolen} stolen"
        + (f" · trace {snapshot.trace_id}" if snapshot.trace_id else ""),
    ]
    if snapshot.stalled:
        lines.append(
            f"** STALLED: no progress for {snapshot.stall_seconds:.0f}s **"
        )
    if snapshot.workers:
        lines.append("")
        header = (
            f"{'WORKER':<28} {'SHARDS':>6} {'TRIALS':>8} {'TRIALS/S':>9} "
            f"{'RSS':>9} {'CLAIMS':>6} {'STEALS':>6} {'SEEN':>6} STATUS"
        )
        lines.append(header)
        for row in snapshot.workers:
            rate = (
                f"{row['trials_per_sec']:,.1f}"
                if row.get("trials_per_sec") is not None
                else "-"
            )
            seen = (
                f"{row['last_seen_age']:.0f}s"
                if row.get("last_seen_age") is not None
                else "-"
            )
            lines.append(
                f"{row['worker']:<28} {row['shards_done']:>6} "
                f"{row['trials_done']:>8} {rate:>9} "
                f"{_fmt_bytes(row.get('rss_bytes')):>9} {row['claims']:>6} "
                f"{row['steals']:>6} {seen:>6} {row['status']}"
            )
    if snapshot.stragglers:
        lines.append("")
        lines.append("stragglers (p95-duration outliers):")
        for item in snapshot.stragglers:
            lines.append(
                f"  bit {item['bit']:>3} [{item['state']}] "
                f"{format_duration(item['duration'])} vs median "
                f"{format_duration(item['median'])} · worker {item['worker']}"
            )
    return "\n".join(lines)


def campaign_top(
    run_dir: str | os.PathLike,
    *,
    refresh: float = 2.0,
    iterations: int | None = None,
    stream=None,
    clear: bool | None = None,
    straggler_factor: float = 2.0,
    stall_after: float = 30.0,
) -> int:
    """Refresh-in-place fleet view; returns a ``campaign top`` exit code.

    Frames redraw until the run completes (exit 0), is cancelled (exit
    3), or ``iterations`` frames have been drawn (exit 0 — the CI /
    ``--once`` path).  ``clear`` defaults to whether the stream is a
    TTY; when true each frame starts with an ANSI home+clear so the
    view refreshes in place like ``top``.
    """
    out = stream if stream is not None else sys.stdout
    if clear is None:
        clear = bool(getattr(out, "isatty", lambda: False)())
    drawn = 0
    while True:
        snapshot = fleet_snapshot(
            run_dir, straggler_factor=straggler_factor, stall_after=stall_after
        )
        frame = render_top(snapshot)
        if clear:
            print("\x1b[2J\x1b[H" + frame, file=out, flush=True)
        else:
            if drawn:
                print("", file=out)
            print(frame, file=out, flush=True)
        drawn += 1
        if snapshot.cancelled:
            return 3
        if snapshot.status == RUN_COMPLETED:
            return 0
        if iterations is not None and drawn >= iterations:
            return 0
        time.sleep(refresh)
