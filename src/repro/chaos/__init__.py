"""Chaos engineering for the campaign harness itself.

The paper measures how number formats absorb silent corruption; this
package holds the campaign *infrastructure* to the same standard.  A
:class:`FaultPlan` injects worker crashes, hangs, raised exceptions,
torn shard writes, byte/bit corruption of shard CSVs and the manifest,
and hard kills into a live :class:`repro.runner.CampaignRunner`:

    from repro.chaos import FaultPlan, FaultSpec
    from repro.inject import CampaignConfig, run_campaign

    plan = FaultPlan([
        FaultSpec("worker-raise", bits=(3,)),
        FaultSpec("worker-hang", bits=(5,), hang=30.0),
        FaultSpec("shard-byte", bits=(7,)),
    ], seed=99)
    run_campaign(data, "posit32", config, jobs=2, run_dir="runs/drill",
                 chaos=plan, heartbeat_timeout=2.0)

The hardened runner survives: retries and heartbeat-kills recover
compute faults, SHA-256 shard checksums catch file corruption on
resume (corrupt shards are quarantined and recomputed), and
``posit-resiliency campaign verify <run-dir>`` audits a run directory
end to end.  ``tests/chaos`` asserts the invariant: any chaos run
either completes bit-identical to the fault-free run or fails loudly
with an actionable error.  See ``docs/robustness.md``.
"""

from repro.chaos.inject import (
    corrupt_file,
    fire_artifact_faults,
    fire_compute_faults,
)
from repro.chaos.plan import (
    ARTIFACT_FAULTS,
    COMPUTE_FAULTS,
    FAULT_KINDS,
    SITE_ARTIFACT,
    SITE_COMPUTE,
    ChaosError,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "ARTIFACT_FAULTS",
    "COMPUTE_FAULTS",
    "ChaosError",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "SITE_ARTIFACT",
    "SITE_COMPUTE",
    "corrupt_file",
    "fire_artifact_faults",
    "fire_compute_faults",
]
