"""Fault plans: seeded, deterministic chaos for the campaign harness.

The paper's experiments flip bits in *data*; this module flips bits in
the *infrastructure that runs the experiments* — workers crash or hang,
shard CSVs tear mid-write or rot on disk, the manifest corrupts, the
whole process gets SIGKILLed between shards.  A :class:`FaultPlan` is a
seeded set of :class:`FaultSpec` activations threaded through
:class:`repro.runner.CampaignRunner` and the worker-pool plumbing; the
chaos test suite asserts the runner's invariant under any plan:

    a chaos run either completes with results bit-identical to the
    fault-free run, or fails loudly with an actionable error —
    never silently wrong.

Determinism: whether a fault fires at a given site is a pure function
of ``(plan seed, fault kind, shard bit, attempt)`` via a keyed hash —
independent of process, scheduling, and wall clock — so a chaos
scenario replays exactly, including across fork-pool workers (the plan
crosses the fork boundary with the worker initializer).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


class ChaosError(RuntimeError):
    """The exception raised by an injected ``worker-raise`` fault."""


#: Faults injected in the shard *compute* path (worker process or the
#: serial loop).  ``worker-crash`` and ``worker-hang`` in a serial run
#: crash/hang the run itself — point them at pool workers (``jobs>1``)
#: unless that is the experiment.
COMPUTE_FAULTS = ("worker-raise", "worker-delay", "worker-hang", "worker-crash")

#: Faults applied to run-directory artifacts after a shard persists.
ARTIFACT_FAULTS = (
    "torn-shard",        # truncate the shard CSV (a torn write)
    "shard-byte",        # XOR one byte of the shard CSV
    "shard-bit",         # flip one bit of the shard CSV
    "manifest-byte",     # XOR one byte of manifest.json
    "manifest-truncate", # truncate manifest.json
    "kill-run",          # SIGKILL the running process between shards
)

FAULT_KINDS = COMPUTE_FAULTS + ARTIFACT_FAULTS

#: Activation site per fault kind.
SITE_COMPUTE = "compute"
SITE_ARTIFACT = "artifact"
_KIND_SITE = {kind: SITE_COMPUTE for kind in COMPUTE_FAULTS}
_KIND_SITE.update({kind: SITE_ARTIFACT for kind in ARTIFACT_FAULTS})


def _unit_draw(seed: int, *key) -> float:
    """A deterministic uniform draw in [0, 1) keyed by ``(seed, *key)``.

    Uses a keyed hash rather than an RNG stream so the decision for one
    (site, bit, attempt) never depends on how many *other* decisions
    were made first — workers and the parent agree without shared state.
    """
    token = ":".join(str(part) for part in (seed, *key))
    digest = hashlib.blake2b(token.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind and the conditions under which it fires.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    rate:
        Activation probability per opportunity (deterministic given the
        plan seed; 1.0 always fires when the other conditions hold).
    bits:
        Restrict firing to these shard bit positions (None = any bit).
    max_attempt:
        Fire only while the shard's 0-based attempt is <= this value.
        The default 0 makes compute faults transient: the retry or the
        requeued shard succeeds, which is what lets the chaos invariant
        require bit-identical completion.
    after_shards:
        Fire only once at least this many shards have completed
        (artifact faults; e.g. ``kill-run`` four shards in).
    delay / hang:
        Sleep seconds for ``worker-delay`` / ``worker-hang``.
    exit_code:
        ``os._exit`` status for ``worker-crash``.
    """

    kind: str
    rate: float = 1.0
    bits: tuple[int, ...] | None = None
    max_attempt: int = 0
    after_shards: int = 0
    delay: float = 0.05
    hang: float = 3600.0
    exit_code: int = 17

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {', '.join(FAULT_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.bits is not None:
            object.__setattr__(self, "bits", tuple(int(b) for b in self.bits))

    @property
    def site(self) -> str:
        return _KIND_SITE[self.kind]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded collection of fault specs consulted at runner hook points.

    Plans are immutable, hashable on their specs, and picklable, so one
    plan object serves the parent process and every fork-pool worker
    and they all make identical activation decisions.
    """

    faults: tuple[FaultSpec, ...]
    seed: int = 0

    def __init__(self, faults, seed: int = 0):
        object.__setattr__(self, "faults", tuple(faults))
        object.__setattr__(self, "seed", int(seed))
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"faults must be FaultSpec instances, got {spec!r}")

    def _activates(self, spec: FaultSpec, site: str, bit: int, attempt: int,
                   shards_done: int) -> bool:
        if spec.site != site:
            return False
        if spec.bits is not None and bit not in spec.bits:
            return False
        if attempt > spec.max_attempt:
            return False
        if shards_done < spec.after_shards:
            return False
        if spec.rate >= 1.0:
            return True
        if spec.rate <= 0.0:
            return False
        return _unit_draw(self.seed, spec.kind, site, bit, attempt) < spec.rate

    def active(self, site: str, *, bit: int, attempt: int = 0,
               shards_done: int = 0) -> tuple[FaultSpec, ...]:
        """The specs that fire at this (site, bit, attempt) opportunity."""
        if site not in (SITE_COMPUTE, SITE_ARTIFACT):
            raise ValueError(f"unknown fault site {site!r}")
        return tuple(
            spec
            for spec in self.faults
            if self._activates(spec, site, bit, attempt, shards_done)
        )

    def describe(self) -> dict:
        """A JSON-friendly description (for logs and run events)."""
        return {
            "seed": self.seed,
            "faults": [
                {"kind": spec.kind, "rate": spec.rate,
                 "bits": list(spec.bits) if spec.bits is not None else None,
                 "max_attempt": spec.max_attempt, "after_shards": spec.after_shards}
                for spec in self.faults
            ],
        }
