"""Fault executors: turn activated :class:`FaultSpec` decisions into harm.

Two families, matching the two hook points in the runner:

* :func:`fire_compute_faults` runs in the shard compute path (a pool
  worker or the serial loop) and raises, sleeps, hangs, or kills the
  worker process;
* :func:`fire_artifact_faults` runs in the parent after a shard
  persists and tears/corrupts run-directory files or SIGKILLs the
  whole process — the disk-rot and power-loss half of the plan.

File corruption is deterministic: the offset and XOR mask derive from
the plan seed and the file's role, so a chaos scenario replays exactly.
Corruption bypasses the atomic write path on purpose — it simulates
damage *after* a successful write (disk rot, torn sectors), which is
precisely what checksum verification must catch.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

from repro.chaos.plan import (
    SITE_ARTIFACT,
    SITE_COMPUTE,
    ChaosError,
    FaultPlan,
    FaultSpec,
    _unit_draw,
)

#: Corruption mode per artifact fault kind.
_CORRUPT_MODE = {
    "torn-shard": "truncate",
    "shard-byte": "byte",
    "shard-bit": "bit",
    "manifest-byte": "byte",
    "manifest-truncate": "truncate",
}


def fire_compute_faults(plan: FaultPlan, bit: int, attempt: int = 0) -> None:
    """Execute any compute-site faults active for this shard attempt.

    Called at the top of shard execution, before any trial runs, so a
    crashed or hung attempt never produces partial records.
    """
    for spec in plan.active(SITE_COMPUTE, bit=bit, attempt=attempt):
        if spec.kind == "worker-raise":
            raise ChaosError(
                f"chaos: injected failure in shard bit={bit} attempt={attempt}"
            )
        if spec.kind == "worker-delay":
            time.sleep(spec.delay)
        elif spec.kind == "worker-hang":
            time.sleep(spec.hang)
        elif spec.kind == "worker-crash":
            os._exit(spec.exit_code)


def corrupt_file(path: str | os.PathLike, *, mode: str, seed: int = 0,
                 token: str = "") -> dict:
    """Deterministically damage one file in place.

    ``mode`` is ``"truncate"`` (keep roughly the first half — a torn
    write), ``"byte"`` (XOR one byte with a nonzero mask), or ``"bit"``
    (flip a single bit).  Returns a description of the damage for the
    event log.  The write is a plain overwrite, not an atomic replace:
    chaos models the disk failing, not the writer.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ChaosError(f"cannot corrupt empty file {path}")
    info: dict = {"path": str(path), "mode": mode, "size": len(data)}
    if mode == "truncate":
        keep = max(1, len(data) // 2)
        data = data[:keep]
        info["kept_bytes"] = keep
    elif mode == "byte":
        offset = int(_unit_draw(seed, "offset", token) * len(data))
        mask = 1 + int(_unit_draw(seed, "mask", token) * 255)
        data[offset] ^= mask
        info.update(offset=offset, xor=mask)
    elif mode == "bit":
        offset = int(_unit_draw(seed, "offset", token) * len(data))
        bitpos = int(_unit_draw(seed, "bitpos", token) * 8)
        data[offset] ^= 1 << bitpos
        info.update(offset=offset, bit=bitpos)
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    path.write_bytes(bytes(data))
    return info


def fire_artifact_faults(
    plan: FaultPlan,
    run_dir: str | os.PathLike,
    bit: int,
    *,
    shards_done: int = 0,
    on_fault=None,
) -> list[dict]:
    """Execute any artifact-site faults active after this shard persisted.

    ``on_fault(spec, info)`` is invoked *before* each fault acts so the
    event log records the injection even when the fault is ``kill-run``
    (the event line flushes, then the process dies — exactly the trace
    an operator of a real power loss would wish they had).  Kill faults
    are applied after every file fault so a single plan can corrupt and
    then kill in one shard.
    """
    from repro.runner.manifest import MANIFEST_NAME, RunManifest

    run_dir = Path(run_dir)
    active = plan.active(SITE_ARTIFACT, bit=bit, shards_done=shards_done)
    fired: list[dict] = []
    kills: list[FaultSpec] = []
    for spec in active:
        if spec.kind == "kill-run":
            kills.append(spec)
            continue
        if spec.kind.startswith("manifest"):
            target = run_dir / MANIFEST_NAME
        else:
            target = RunManifest.shard_path(run_dir, bit)
        if not target.is_file():
            continue
        info = {"kind": spec.kind, "bit": bit}
        if on_fault is not None:
            on_fault(spec, dict(info, path=str(target)))
        info.update(
            corrupt_file(
                target,
                mode=_CORRUPT_MODE[spec.kind],
                seed=plan.seed,
                token=f"{spec.kind}:{bit}",
            )
        )
        fired.append(info)
    for spec in kills:
        if on_fault is not None:
            on_fault(spec, {"kind": spec.kind, "bit": bit, "pid": os.getpid()})
        os.kill(os.getpid(), signal.SIGKILL)
    return fired
