"""PositArray: a NumPy-like container of posit values.

The rest of the package works on raw bit patterns (the right level for
fault injection); ``PositArray`` wraps them behind the interface a
numerical user expects — construction from floats, arithmetic operators,
comparisons, slicing, reductions — so the library also serves as a
practical drop-in posit array type.

Semantics:

* construction and every arithmetic result round to nearest (even) in
  the array's posit format;
* NaR propagates like NaN and is surfaced as NaN by :meth:`to_floats`;
* ``sum``/``dot`` offer ``fused=True`` to accumulate through the quire
  (one rounding total), the posit standard's headline feature.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.posit import arithmetic
from repro.posit.config import POSIT32, PositConfig
from repro.posit.decode import decode
from repro.posit.encode import encode
from repro.posit.quire import Quire
from repro.posit.special import is_nar


class PositArray:
    """An array of posit-encoded values.

    Parameters
    ----------
    values:
        Floats (or anything ``np.asarray`` accepts) to encode, or an
        existing ``PositArray`` to convert between formats.
    config:
        Posit format (default: standard posit32).
    """

    __slots__ = ("_bits", "config")

    def __init__(self, values, config: PositConfig = POSIT32) -> None:
        self.config = config
        if isinstance(values, PositArray):
            self._bits = np.asarray(
                encode(values.to_floats(), config), dtype=config.dtype
            )
        else:
            self._bits = np.asarray(
                encode(np.asarray(values, dtype=np.float64), config),
                dtype=config.dtype,
            )

    # -- construction --------------------------------------------------------

    @classmethod
    def from_bits(cls, bits, config: PositConfig = POSIT32) -> "PositArray":
        """Wrap existing bit patterns without re-encoding."""
        instance = cls.__new__(cls)
        instance.config = config
        instance._bits = np.asarray(bits, dtype=config.dtype)
        return instance

    @classmethod
    def zeros(cls, shape, config: PositConfig = POSIT32) -> "PositArray":
        return cls.from_bits(np.zeros(shape, dtype=config.dtype), config)

    # -- views ---------------------------------------------------------------

    @property
    def bits(self) -> np.ndarray:
        """The raw bit patterns (a view; mutate at your own risk)."""
        return self._bits

    def to_floats(self) -> np.ndarray:
        """Nearest-float64 values (NaR -> NaN)."""
        return np.asarray(decode(self._bits, self.config))

    def astype(self, config: PositConfig) -> "PositArray":
        """Convert to another posit format (rounds once)."""
        return PositArray(self.to_floats(), config)

    @property
    def shape(self):
        return self._bits.shape

    @property
    def size(self) -> int:
        return self._bits.size

    def __len__(self) -> int:
        return len(self._bits)

    def __iter__(self) -> Iterable[float]:
        return iter(self.to_floats())

    def __getitem__(self, key) -> "PositArray":
        return PositArray.from_bits(np.atleast_1d(self._bits[key]), self.config)

    def __setitem__(self, key, value) -> None:
        if isinstance(value, PositArray):
            encoded = np.asarray(
                encode(value.to_floats(), self.config), dtype=self.config.dtype
            )
        else:
            encoded = np.asarray(
                encode(np.asarray(value, dtype=np.float64), self.config),
                dtype=self.config.dtype,
            )
        # A single-element source assigns into scalar slots too.
        if encoded.size == 1 and np.ndim(self._bits[key]) == 0:
            encoded = encoded.reshape(())
        self._bits[key] = encoded

    def is_nar(self) -> np.ndarray:
        """Boolean mask of NaR elements."""
        return np.asarray(is_nar(self._bits, self.config))

    # -- arithmetic ------------------------------------------------------------

    def _coerce(self, other) -> np.ndarray:
        if isinstance(other, PositArray):
            if other.config != self.config:
                raise TypeError(
                    f"format mismatch: {self.config} vs {other.config}; "
                    "convert explicitly with astype()"
                )
            return other._bits
        return np.asarray(
            encode(np.asarray(other, dtype=np.float64), self.config),
            dtype=self.config.dtype,
        )

    def _binary(self, op, other) -> "PositArray":
        result = op(self._bits, self._coerce(other), self.config)
        return PositArray.from_bits(np.asarray(result), self.config)

    def __add__(self, other):
        return self._binary(arithmetic.add, other)

    def __radd__(self, other):
        return self._binary(arithmetic.add, other)

    def __sub__(self, other):
        return self._binary(arithmetic.subtract, other)

    def __rsub__(self, other):
        coerced = PositArray.from_bits(self._coerce(other), self.config)
        return coerced - self

    def __mul__(self, other):
        return self._binary(arithmetic.multiply, other)

    def __rmul__(self, other):
        return self._binary(arithmetic.multiply, other)

    def __truediv__(self, other):
        return self._binary(arithmetic.divide, other)

    def __rtruediv__(self, other):
        coerced = PositArray.from_bits(self._coerce(other), self.config)
        return coerced / self

    def __neg__(self):
        return PositArray.from_bits(
            np.asarray(arithmetic.negate(self._bits, self.config)), self.config
        )

    def __abs__(self):
        return PositArray.from_bits(
            np.asarray(arithmetic.absolute(self._bits, self.config)), self.config
        )

    def sqrt(self) -> "PositArray":
        return PositArray.from_bits(
            np.asarray(arithmetic.sqrt(self._bits, self.config)), self.config
        )

    # -- comparisons ------------------------------------------------------------

    def _compare(self, other) -> np.ndarray:
        return arithmetic.compare(self._bits, self._coerce(other), self.config)

    def __eq__(self, other):  # type: ignore[override]
        return self._compare(other) == 0

    def __ne__(self, other):  # type: ignore[override]
        return self._compare(other) != 0

    def __lt__(self, other):
        return self._compare(other) < 0

    def __le__(self, other):
        return self._compare(other) <= 0

    def __gt__(self, other):
        return self._compare(other) > 0

    def __ge__(self, other):
        return self._compare(other) >= 0

    __hash__ = None  # type: ignore[assignment]

    # -- reductions --------------------------------------------------------------

    def sum(self, fused: bool = False) -> float:
        """Sum of all elements.

        ``fused=True`` accumulates exactly in a quire and rounds once;
        the default folds left-to-right with a posit rounding per step
        (hardware-without-quire semantics).
        """
        if fused:
            quire = Quire(self.config)
            for pattern in self._bits.reshape(-1):
                quire.add_posit(int(pattern))
            return float(decode(np.uint64(quire.to_posit()), self.config))
        accumulator = self.config.dtype.type(self.config.zero_pattern)
        for pattern in self._bits.reshape(-1):
            accumulator = arithmetic.add(
                np.asarray([accumulator]), np.asarray([pattern]), self.config
            )[0]
        return float(decode(np.uint64(accumulator), self.config))

    def dot(self, other: "PositArray", fused: bool = False) -> float:
        """Dot product with another PositArray of the same format."""
        other_bits = self._coerce(other)
        if fused:
            quire = Quire(self.config)
            for a, b in zip(self._bits.reshape(-1), other_bits.reshape(-1)):
                quire.add_product(int(a), int(b))
            return float(decode(np.uint64(quire.to_posit()), self.config))
        products = arithmetic.multiply(self._bits, other_bits, self.config)
        return PositArray.from_bits(np.asarray(products), self.config).sum()

    # -- repr ---------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = np.array2string(self.to_floats(), threshold=8)
        return f"PositArray({preview}, {self.config})"
