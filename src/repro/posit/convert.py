"""Conversions between posit formats (width / es changes).

The standard defines conversion between posit types as a value-preserving
re-rounding: decode the source exactly, encode into the target with
round-to-nearest-even.  Widening standard formats is exact (every
posit(n) value is representable in posit(2n) with the same es); narrowing
rounds once.

The vectorized fast path routes through float64, which is exact whenever
the source fraction fits 52 bits (always true for sources up to 32 bits).
For posit64 sources the exact scalar path avoids double rounding.
"""

from __future__ import annotations

import numpy as np

from repro.posit._reference import decode_exact, encode_exact
from repro.posit.config import PositConfig
from repro.posit.decode import decode
from repro.posit.encode import encode


def convert(bits, source: PositConfig, target: PositConfig, exact: bool = False):
    """Re-encode posit patterns from ``source`` format into ``target``.

    Parameters
    ----------
    exact:
        Force the scalar rational path (single rounding for any source).
        The default vectorized path is automatically exact for sources
        of width <= 32 bits; posit64 sources with > 52 fraction bits can
        double-round through float64, so conversions *from* posit64
        select the exact path on their own.
    """
    work = np.asarray(bits)
    scalar_input = work.ndim == 0
    work = np.atleast_1d(work).astype(np.uint64)

    needs_exact = exact or source.max_fraction_bits > 52
    if needs_exact:
        out = np.empty(work.shape, dtype=target.dtype)
        flat = out.reshape(-1)
        for i, pattern in enumerate(work.reshape(-1)):
            value = decode_exact(int(pattern), source)
            if value is None:
                flat[i] = target.nar_pattern
            else:
                flat[i] = encode_exact(value, target)
    else:
        values = decode(work, source)
        out = np.asarray(encode(values, target), dtype=target.dtype)
        nar_mask = work & np.uint64(source.mask)
        nar_mask = nar_mask == np.uint64(source.nar_pattern)
        out = np.where(nar_mask, target.dtype.type(target.nar_pattern), out)

    if scalar_input:
        return out.reshape(-1)[0]
    return out


def is_widening_exact(source: PositConfig, target: PositConfig) -> bool:
    """Whether every source value is exactly representable in the target.

    True when the target has at least the source's scale range and at
    least as many fraction bits at every scale — which for equal ``es``
    reduces to ``target.nbits >= source.nbits``.
    """
    if target.es != source.es:
        return False
    return target.nbits >= source.nbits


def round_trip_is_identity(source: PositConfig, target: PositConfig) -> bool:
    """Whether convert(convert(p, source->target), target->source) == p.

    Holds whenever the widening direction is exact.
    """
    return is_widening_exact(source, target)
