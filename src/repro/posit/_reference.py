"""Exact scalar posit reference implementation.

This module is the ground truth the vectorized encoder/decoder are tested
against.  It works on Python integers and :class:`fractions.Fraction`, so
every result is exact — no float rounding anywhere except where the posit
semantics themselves demand rounding.

Decoding implements both forms and cross-checks are done in the tests:

* the *direct* formula from the 2022 Posit Standard (the paper's Eq. 2),
  which reads the fields from the raw bit pattern::

      p = ((1 - 3s) + f) * 2**((1 - 2s) * (2**es * r + e + s))

* the *classic* two's-complement form: negative patterns are complemented,
  decoded as positive, and negated.

Encoding performs round-to-nearest-even on the posit bit string (the
rounding SoftPosit implements, which the paper's campaign relies on), with
the standard's saturation rules: a nonzero real never rounds to zero
(clamps to minpos) and a finite real never rounds to NaR (clamps to
maxpos); NaN and infinities map to NaR.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.posit.config import PositConfig


def round_half_even(value: Fraction) -> int:
    """Round an exact rational to the nearest integer, ties to even."""
    floor = value.numerator // value.denominator
    remainder = value - floor
    half = Fraction(1, 2)
    if remainder > half:
        return floor + 1
    if remainder < half:
        return floor
    return floor + (floor & 1)


def _split_fields(pattern: int, config: PositConfig) -> tuple[int, int, int, int, int]:
    """Extract (sign, regime r, exponent e, fraction m, fraction int).

    Fields are read from the raw pattern exactly as in the paper's
    Figure 4: sign, a run of identical regime bits optionally terminated,
    then up to ``es`` exponent bits, then the fraction.  Truncated
    exponent bits read as zero.
    """
    n = config.nbits
    pattern &= config.mask
    sign = (pattern >> (n - 1)) & 1
    body = pattern & (config.mask >> 1)  # low n-1 bits
    body_width = n - 1

    top_bit = (body >> (body_width - 1)) & 1 if body_width else 0
    run = 0
    for i in range(body_width - 1, -1, -1):
        if ((body >> i) & 1) == top_bit:
            run += 1
        else:
            break
    k = run
    has_terminator = run < body_width
    regime = k - 1 if top_bit == 1 else -k

    consumed = run + (1 if has_terminator else 0)
    rem = body_width - consumed
    e_avail = min(rem, config.es)
    if e_avail > 0:
        e = (body >> (rem - e_avail)) & ((1 << e_avail) - 1)
        e <<= config.es - e_avail
    else:
        e = 0
    m = max(rem - config.es, 0)
    f_int = body & ((1 << m) - 1) if m > 0 else 0
    return sign, regime, e, m, f_int


def decode_exact(pattern: int, config: PositConfig) -> Fraction | None:
    """Decode a posit bit pattern to an exact rational.

    Returns ``None`` for NaR.  Uses the direct (sign-free) standard
    formula on the raw bits.
    """
    pattern = int(pattern) & config.mask
    if pattern == config.zero_pattern:
        return Fraction(0)
    if pattern == config.nar_pattern:
        return None
    sign, regime, e, m, f_int = _split_fields(pattern, config)
    f = Fraction(f_int, 1 << m) if m > 0 else Fraction(0)
    mantissa = (1 - 3 * sign) + f
    scale = (1 - 2 * sign) * (config.useed_log2 * regime + e + sign)
    if scale >= 0:
        return mantissa * (1 << scale)
    return mantissa / (1 << (-scale))


def decode_exact_twos_complement(pattern: int, config: PositConfig) -> Fraction | None:
    """Classic decode: complement negatives, decode positive, negate."""
    pattern = int(pattern) & config.mask
    if pattern == config.zero_pattern:
        return Fraction(0)
    if pattern == config.nar_pattern:
        return None
    negative = bool(pattern & config.sign_mask)
    if negative:
        pattern = (~pattern + 1) & config.mask
    sign, regime, e, m, f_int = _split_fields(pattern, config)
    assert sign == 0, "two's complement of a non-NaR negative is positive"
    f = Fraction(f_int, 1 << m) if m > 0 else Fraction(0)
    value = (1 + f) * Fraction(2) ** (config.useed_log2 * regime + e)
    return -value if negative else value


def decode_float(pattern: int, config: PositConfig) -> float:
    """Decode to the nearest float64 (NaR becomes NaN)."""
    exact = decode_exact(pattern, config)
    if exact is None:
        return math.nan
    return float(exact)


def _floor_log2(value: Fraction) -> int:
    """Exact floor(log2(value)) for a positive rational."""
    if value <= 0:
        raise ValueError("value must be positive")
    estimate = value.numerator.bit_length() - value.denominator.bit_length()
    # estimate is within 1 of the true floor; fix up exactly.
    power = Fraction(2) ** estimate
    if power > value:
        estimate -= 1
        power /= 2
    if power * 2 <= value:
        estimate += 1
    return estimate


def encode_exact(value, config: PositConfig) -> int:
    """Encode a real value (float or Fraction) to a posit bit pattern.

    Implements bit-string round-to-nearest-even with the standard's
    saturation rules.  Floats are treated as exact dyadic rationals.
    """
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            return config.nar_pattern
        value = Fraction(value)
    else:
        value = Fraction(value)
    if value == 0:
        return config.zero_pattern

    n = config.nbits
    negative = value < 0
    magnitude = -value if negative else value

    if magnitude >= Fraction(2) ** config.max_scale:
        pattern = config.maxpos_pattern
        return _apply_sign(pattern, negative, config)
    if magnitude <= Fraction(2) ** (-config.max_scale):
        pattern = config.minpos_pattern
        return _apply_sign(pattern, negative, config)

    h = _floor_log2(magnitude)
    regime = h // config.useed_log2  # floor division: exact for negatives
    e = h - config.useed_log2 * regime
    fraction = magnitude / (Fraction(2) ** h) - 1  # in [0, 1)

    if regime >= 0:
        regime_pattern = ((1 << (regime + 1)) - 1) << 1
        regime_len = regime + 2
    else:
        regime_pattern = 1
        regime_len = -regime + 1
    prefix = (regime_pattern << config.es) | e
    prefix_len = 1 + regime_len + config.es  # leading 0 sign bit

    # Ideal unbounded pattern, as an exact rational scaled so that bit
    # (n-1) of the integer part is the sign position.
    ideal = (prefix + fraction) * Fraction(2) ** (n - prefix_len)
    pattern = round_half_even(ideal)
    pattern = min(max(pattern, config.minpos_pattern), config.maxpos_pattern)
    return _apply_sign(pattern, negative, config)


def _apply_sign(pattern: int, negative: bool, config: PositConfig) -> int:
    if negative:
        return (~pattern + 1) & config.mask
    return pattern


def next_pattern_up(pattern: int, config: PositConfig) -> int:
    """The next posit pattern in value order (wraps through NaR)."""
    return (int(pattern) + 1) & config.mask


def pattern_ulp_neighbors(pattern: int, config: PositConfig) -> tuple[int, int]:
    """The (lower, upper) neighboring patterns in value order."""
    pattern = int(pattern) & config.mask
    return (pattern - 1) & config.mask, (pattern + 1) & config.mask
