"""Posit format configuration.

The Posit Standard (2022) fixes ``es = 2`` for every width, so the
standard types are ``posit8``/``posit16``/``posit32``/``posit64`` with two
exponent bits each.  Earlier drafts (and some literature) used
width-dependent ``es``; the ``es`` parameter is kept generic so those
variants — and the paper's future-work widths — can be studied with the
same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.bitops import uint_dtype_for


@dataclass(frozen=True)
class PositConfig:
    """Immutable description of a posit format.

    Parameters
    ----------
    nbits:
        Total width in bits (3..64).
    es:
        Number of exponent bits (the standard mandates 2).
    """

    nbits: int
    es: int = 2

    def __post_init__(self) -> None:
        if not 3 <= self.nbits <= 64:
            raise ValueError(f"posit nbits must be in [3, 64], got {self.nbits}")
        if not 0 <= self.es <= 4:
            raise ValueError(f"posit es must be in [0, 4], got {self.es}")

    # -- derived constants -------------------------------------------------

    @property
    def useed_log2(self) -> int:
        """log2 of useed = 2**(2**es); the regime scales by useed per bit."""
        return 1 << self.es

    @property
    def mask(self) -> int:
        """All-ones mask over the posit width, as a Python int."""
        return (1 << self.nbits) - 1

    @property
    def sign_mask(self) -> int:
        """Mask selecting the sign bit."""
        return 1 << (self.nbits - 1)

    @property
    def nar_pattern(self) -> int:
        """Bit pattern of NaR (Not a Real): sign bit set, all else zero."""
        return self.sign_mask

    @property
    def zero_pattern(self) -> int:
        """Bit pattern of zero."""
        return 0

    @property
    def maxpos_pattern(self) -> int:
        """Bit pattern of the largest positive posit (0111...1)."""
        return self.mask >> 1

    @property
    def minpos_pattern(self) -> int:
        """Bit pattern of the smallest positive posit (000...01)."""
        return 1

    @property
    def max_scale(self) -> int:
        """Largest power-of-two scale: maxpos == 2**max_scale."""
        return self.useed_log2 * (self.nbits - 2)

    @property
    def maxpos(self) -> float:
        """Value of the largest positive posit, as a float."""
        return float(2.0 ** self.max_scale)

    @property
    def minpos(self) -> float:
        """Value of the smallest positive posit, as a float."""
        return float(2.0 ** (-self.max_scale))

    @property
    def max_fraction_bits(self) -> int:
        """Most fraction bits any value of this format can carry."""
        return max(self.nbits - 3 - self.es, 0)

    @property
    def dtype(self) -> np.dtype:
        """NumPy unsigned dtype wide enough to store a bit pattern."""
        return uint_dtype_for(self.nbits)

    @property
    def storage_bits(self) -> int:
        """Width of the NumPy storage dtype in bits."""
        return self.dtype.itemsize * 8

    # -- convenience -------------------------------------------------------

    def is_standard(self) -> bool:
        """True when this format follows the 2022 standard (es == 2)."""
        return self.es == 2

    def describe(self) -> str:
        """Single-line human-readable summary of the format."""
        return (
            f"posit{self.nbits} (es={self.es}, useed=2^{self.useed_log2}, "
            f"maxpos=2^{self.max_scale}, up to {self.max_fraction_bits} "
            f"fraction bits)"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"posit{self.nbits}es{self.es}"


@lru_cache(maxsize=None)
def standard_config(nbits: int) -> PositConfig:
    """The 2022-standard configuration for a given width (es = 2)."""
    return PositConfig(nbits=nbits, es=2)


POSIT8 = standard_config(8)
POSIT16 = standard_config(16)
POSIT32 = standard_config(32)
POSIT64 = standard_config(64)

STANDARD_CONFIGS = {8: POSIT8, 16: POSIT16, 32: POSIT32, 64: POSIT64}
