"""SoftPosit-compatible API surface.

The paper's campaign is written against Cerlane Leong's SoftPosit C
library; this module mirrors the subset it uses, so code following the
paper's methodology runs against this package unmodified:

* ``convertFloatToP32`` / ``convertP32ToFloat`` — the storage conversions;
* ``posit32_t`` — a struct-like wrapper exposing the raw unsigned ``v``
  member (Section 4.1.2 flips bits on exactly that member);
* ``p32_to_ui32`` / ``ui32_to_p32`` — SoftPosit's *numeric* conversions
  between posits and unsigned integers.  These round the numeric value
  (to an integer, and back to a posit), which is precisely why the paper
  measured "a relative error of 1e-5" when using them as a bit-transport
  mechanism and switched to the raw ``v`` member instead.  They are
  implemented faithfully so that methodological observation is
  reproducible (see the ``ext-methodology`` experiment).

SoftPosit rounding convention for ``p32_to_ui32``: round to nearest
integer, ties to even; negative values and NaR map to 0 (SoftPosit
returns 0 for out-of-range unsigned conversions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.posit.config import POSIT32
from repro.posit.decode import decode
from repro.posit.encode import encode


@dataclass
class posit32_t:
    """SoftPosit's posit32_t: a struct holding the raw pattern ``v``."""

    v: int = 0

    def __post_init__(self) -> None:
        self.v = int(self.v) & POSIT32.mask


def convertFloatToP32(value: float) -> posit32_t:
    """float -> posit32 with round-to-nearest-even (SoftPosit semantics)."""
    return posit32_t(int(encode(np.float64(value), POSIT32)))


def convertP32ToFloat(posit: posit32_t) -> float:
    """posit32 -> nearest float64 (NaR becomes NaN)."""
    return float(decode(np.uint64(posit.v), POSIT32))


def convertDoubleToP32(value: float) -> posit32_t:
    """Alias with SoftPosit's double-precision entry-point name."""
    return convertFloatToP32(value)


def convertP32ToDouble(posit: posit32_t) -> float:
    """Alias with SoftPosit's double-precision entry-point name."""
    return convertP32ToFloat(posit)


def p32_to_ui32(posit: posit32_t) -> int:
    """Numeric conversion: the posit's *value* rounded to a uint32.

    This is NOT a bit reinterpretation — SoftPosit rounds the numeric
    value to the nearest unsigned integer (ties to even), clamping
    negatives and NaR to 0 and saturating at UINT32_MAX.
    """
    value = convertP32ToFloat(posit)
    if not np.isfinite(value) or value <= 0:
        return 0
    if value >= 2**32 - 1:
        return 2**32 - 1
    floor = int(np.floor(value))
    remainder = value - floor
    if remainder > 0.5 or (remainder == 0.5 and floor % 2 == 1):
        return floor + 1
    return floor


def ui32_to_p32(value: int) -> posit32_t:
    """Numeric conversion: a uint32's value encoded as the nearest posit."""
    if not 0 <= value < 2**32:
        raise ValueError(f"value {value} out of uint32 range")
    return convertFloatToP32(float(value))


def castUI32(posit: posit32_t) -> int:
    """Bit-level escape hatch: the raw pattern (the paper's ``v`` access)."""
    return posit.v


def castP32(bits: int) -> posit32_t:
    """Bit-level escape hatch: wrap a raw pattern without conversion."""
    return posit32_t(bits)
