"""Exhaustive posit value tables for small widths.

For widths up to 16 bits we can enumerate every pattern, which the tests
use as ground truth and which the accuracy analysis (the paper's Fig. 7)
uses to compute decimal-accuracy profiles over the full lattice.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.posit.config import PositConfig
from repro.posit.decode import decode

_MAX_TABLE_BITS = 20


@lru_cache(maxsize=8)
def _value_table_cached(nbits: int, es: int) -> np.ndarray:
    config = PositConfig(nbits=nbits, es=es)
    patterns = np.arange(1 << nbits, dtype=np.uint64)
    return decode(patterns, config)


def value_table(config: PositConfig) -> np.ndarray:
    """float64 value of every pattern of a small posit format.

    Index ``i`` holds the value of pattern ``i``; NaR decodes to NaN.
    Only formats up to 20 bits are enumerable.
    """
    if config.nbits > _MAX_TABLE_BITS:
        raise ValueError(
            f"value_table only supports nbits <= {_MAX_TABLE_BITS}, got {config.nbits}"
        )
    return _value_table_cached(config.nbits, config.es)


def positive_values_sorted(config: PositConfig) -> np.ndarray:
    """All positive representable values of a small format, ascending.

    Posits compare like signed integers, so patterns 1..maxpos are
    already value-ordered; this is asserted rather than re-sorted.
    """
    table = value_table(config)
    values = table[1 : config.maxpos_pattern + 1]
    if not np.all(np.diff(values) > 0):  # pragma: no cover - invariant
        raise AssertionError("posit lattice must be monotonic")
    return values


def lattice_neighbors(value: float, config: PositConfig) -> tuple[float, float]:
    """The two representable values bracketing ``value`` (small formats)."""
    values = positive_values_sorted(config)
    if value <= 0:
        raise ValueError("lattice_neighbors expects a positive value")
    index = int(np.searchsorted(values, value))
    low = values[max(index - 1, 0)]
    high = values[min(index, len(values) - 1)]
    return float(low), float(high)
