"""ULP and spacing utilities for posit formats.

The spacing between adjacent representable values is the natural unit of
representation error, and for posits it varies with the regime (tapered
precision).  These helpers answer "how far apart are posits around x?" —
used by the accuracy analysis, by tests, and by anyone sizing tolerances
for posit-stored data.
"""

from __future__ import annotations

import numpy as np

from repro.posit.config import PositConfig
from repro.posit.decode import decode
from repro.posit.encode import encode


def next_up(bits, config: PositConfig):
    """Pattern of the next larger representable value (NaR saturates).

    Posit patterns ordered as signed integers are value-ordered, so the
    successor is pattern + 1 — except maxpos, whose successor would be
    NaR and instead saturates (stays maxpos), matching the convention
    that no arithmetic path reaches NaR from a real.
    """
    work = np.asarray(bits).astype(np.uint64, copy=False) & np.uint64(config.mask)
    successor = (work + np.uint64(1)) & np.uint64(config.mask)
    at_max = work == np.uint64(config.maxpos_pattern)
    is_nar = work == np.uint64(config.nar_pattern)
    result = np.where(at_max | is_nar, work, successor)
    return result.astype(config.dtype)


def next_down(bits, config: PositConfig):
    """Pattern of the next smaller representable value (symmetric rules)."""
    work = np.asarray(bits).astype(np.uint64, copy=False) & np.uint64(config.mask)
    predecessor = (work - np.uint64(1)) & np.uint64(config.mask)
    at_min = work == np.uint64((config.nar_pattern + 1) & config.mask)  # most negative real
    is_nar = work == np.uint64(config.nar_pattern)
    result = np.where(at_min | is_nar, work, predecessor)
    return result.astype(config.dtype)


def ulp(bits, config: PositConfig) -> np.ndarray:
    """Distance to the next larger representable value, per element.

    For maxpos (no successor) the distance to the *predecessor* is
    returned, mirroring how IEEE ulp conventions handle the top of the
    range; NaR yields NaN.
    """
    work = np.asarray(bits).astype(np.uint64, copy=False) & np.uint64(config.mask)
    values = np.asarray(decode(work, config), dtype=np.float64)
    up = np.asarray(decode(next_up(work, config), config), dtype=np.float64)
    down = np.asarray(decode(next_down(work, config), config), dtype=np.float64)
    at_max = work == np.uint64(config.maxpos_pattern)
    spacing = np.where(at_max, values - down, up - values)
    return np.where(work == np.uint64(config.nar_pattern), np.nan, spacing)


def spacing_at(values, config: PositConfig) -> np.ndarray:
    """Posit spacing around arbitrary real values (after rounding in)."""
    patterns = np.asarray(encode(np.asarray(values, dtype=np.float64), config))
    return ulp(patterns, config)


def relative_spacing_at(values, config: PositConfig) -> np.ndarray:
    """spacing / |value| — the local relative resolution.

    Minimal near |x| = 1 (the posit sweet spot) and growing with the
    regime; infinite at zero.
    """
    array = np.asarray(values, dtype=np.float64)
    spacing = spacing_at(array, config)
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = spacing / np.abs(array)
    return np.where(array == 0, np.inf, rel)
