"""Posit arithmetic on bit patterns.

Two evaluation modes are provided:

* ``fast`` (default): decode to float64, apply the float64 operation, and
  re-encode.  This is exact for posit8/posit16 (their precision is low
  enough that double rounding through 53 bits is provably innocuous) and
  correct for posit32 except in rare double-rounding cases near a
  round-to-nearest tie (the intermediate 53-bit result can mask the tie;
  posit32 carries up to 27 fraction bits, and innocuous double rounding
  requires an intermediate precision of at least 2*27 + 2 = 56 bits).

* ``exact``: scalar, Fraction-based, correctly rounded for every width.
  Used by the tests to validate the fast path and available for
  correctness-critical work.

Fault injection itself never performs posit arithmetic — the paper's
campaign only converts float -> posit -> flipped posit -> float — but a
credible posit library must compute, and the quire (see
:mod:`repro.posit.quire`) builds on the exact mode.

NaR propagates through every operation, and division by zero or sqrt of a
negative yields NaR, per the standard.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable

import numpy as np

from repro.posit._reference import decode_exact, encode_exact
from repro.posit.config import PositConfig
from repro.posit.decode import decode
from repro.posit.encode import encode
from repro.posit.special import is_nar


def negate(bits, config: PositConfig):
    """Exact negation: the two's complement of the pattern (Fig. 19).

    Zero and NaR are their own negations.
    """
    from repro.bitops import twos_complement

    work = np.asarray(bits).astype(np.uint64, copy=False) & np.uint64(config.mask)
    result = twos_complement(work, config.nbits)
    result = np.where(work == np.uint64(config.nar_pattern), work, result)
    return result.astype(config.dtype)


def absolute(bits, config: PositConfig):
    """|p| as a pattern: negate when the sign bit is set (NaR unchanged)."""
    work = np.asarray(bits).astype(np.uint64, copy=False) & np.uint64(config.mask)
    negative = (work & np.uint64(config.sign_mask)) != 0
    negated = negate(work, config).astype(np.uint64)
    result = np.where(negative, negated, work)
    result = np.where(work == np.uint64(config.nar_pattern), work, result)
    return result.astype(config.dtype)


def _binary_fast(op: Callable, a, b, config: PositConfig):
    lhs = decode(a, config)
    rhs = decode(b, config)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        result = op(lhs, rhs)
    pattern = encode(result, config)
    bad = is_nar(a, config) | is_nar(b, config)
    return np.where(bad, config.dtype.type(config.nar_pattern), pattern).astype(config.dtype)


def _binary_exact(op_name: str, a, b, config: PositConfig):
    a_arr, b_arr = np.broadcast_arrays(
        np.atleast_1d(np.asarray(a).astype(np.uint64)),
        np.atleast_1d(np.asarray(b).astype(np.uint64)),
    )
    out = np.empty(a_arr.shape, dtype=config.dtype)
    flat_out = out.reshape(-1)
    for i, (pa, pb) in enumerate(zip(a_arr.reshape(-1), b_arr.reshape(-1))):
        va = decode_exact(int(pa), config)
        vb = decode_exact(int(pb), config)
        if va is None or vb is None:
            flat_out[i] = config.nar_pattern
            continue
        if op_name == "add":
            result: Fraction | None = va + vb
        elif op_name == "sub":
            result = va - vb
        elif op_name == "mul":
            result = va * vb
        elif op_name == "div":
            result = None if vb == 0 else va / vb
        else:  # pragma: no cover - guarded by callers
            raise ValueError(f"unknown op {op_name}")
        if result is None:
            flat_out[i] = config.nar_pattern
        else:
            flat_out[i] = encode_exact(result, config)
    if np.asarray(a).ndim == 0 and np.asarray(b).ndim == 0:
        return out.reshape(-1)[0]
    return out


def add(a, b, config: PositConfig, mode: str = "fast"):
    """Posit addition on bit patterns."""
    if mode == "exact":
        return _binary_exact("add", a, b, config)
    return _binary_fast(np.add, a, b, config)


def subtract(a, b, config: PositConfig, mode: str = "fast"):
    """Posit subtraction on bit patterns."""
    if mode == "exact":
        return _binary_exact("sub", a, b, config)
    return _binary_fast(np.subtract, a, b, config)


def multiply(a, b, config: PositConfig, mode: str = "fast"):
    """Posit multiplication on bit patterns."""
    if mode == "exact":
        return _binary_exact("mul", a, b, config)
    return _binary_fast(np.multiply, a, b, config)


def divide(a, b, config: PositConfig, mode: str = "fast"):
    """Posit division on bit patterns; x/0 is NaR per the standard."""
    if mode == "exact":
        return _binary_exact("div", a, b, config)
    result = _binary_fast(np.divide, a, b, config)
    zero_divisor = np.asarray(decode(b, config)) == 0.0
    return np.where(zero_divisor, config.dtype.type(config.nar_pattern), result).astype(config.dtype)


def sqrt(a, config: PositConfig):
    """Posit square root; negative inputs and NaR give NaR."""
    values = decode(a, config)
    with np.errstate(invalid="ignore"):
        result = np.sqrt(values)
    pattern = encode(result, config)
    return np.where(
        np.asarray(values) < 0, config.dtype.type(config.nar_pattern), pattern
    ).astype(config.dtype)


def fma(a, b, c, config: PositConfig, mode: str = "fast"):
    """Fused multiply-add: round(a*b + c) with a single rounding.

    The fast path uses float64 FMA-like evaluation (two float64
    roundings at 53 bits, then one posit rounding); the exact path
    performs a*b + c in rational arithmetic and rounds once.
    """
    if mode == "exact":
        a_arr, b_arr, c_arr = np.broadcast_arrays(
            np.atleast_1d(np.asarray(a).astype(np.uint64)),
            np.atleast_1d(np.asarray(b).astype(np.uint64)),
            np.atleast_1d(np.asarray(c).astype(np.uint64)),
        )
        out = np.empty(a_arr.shape, dtype=config.dtype)
        flat = out.reshape(-1)
        for i, (pa, pb, pc) in enumerate(
            zip(a_arr.reshape(-1), b_arr.reshape(-1), c_arr.reshape(-1))
        ):
            va, vb, vc = (decode_exact(int(p), config) for p in (pa, pb, pc))
            if va is None or vb is None or vc is None:
                flat[i] = config.nar_pattern
            else:
                flat[i] = encode_exact(va * vb + vc, config)
        if all(np.asarray(x).ndim == 0 for x in (a, b, c)):
            return out.reshape(-1)[0]
        return out
    lhs = decode(a, config)
    rhs = decode(b, config)
    addend = decode(c, config)
    with np.errstate(over="ignore", invalid="ignore"):
        result = lhs * rhs + addend
    pattern = encode(result, config)
    bad = is_nar(a, config) | is_nar(b, config) | is_nar(c, config)
    return np.where(bad, config.dtype.type(config.nar_pattern), pattern).astype(config.dtype)


def compare(a, b, config: PositConfig) -> np.ndarray:
    """Three-way compare of posit values via their patterns.

    Posits compare like two's-complement integers (a designed property of
    the encoding); NaR compares less than everything, as the standard
    orders it.  Returns -1/0/+1.
    """
    from repro.bitops import to_signed

    sa = to_signed(np.asarray(a).astype(np.uint64), config.nbits)
    sb = to_signed(np.asarray(b).astype(np.uint64), config.nbits)
    return np.sign(sa - sb).astype(np.int64)
