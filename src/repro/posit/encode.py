"""Vectorized float64 → posit encoding with round-to-nearest-even.

The encoder mirrors SoftPosit's conversion semantics (the paper's
``convertFloatToP32``): the input is treated as an exact real, laid out as
an unbounded sign/regime/exponent/fraction bit string, truncated to
``nbits`` with round-to-nearest-even on the bit string (guard + sticky),
and clamped so that a nonzero finite real never becomes zero or NaR
(saturating at minpos / maxpos).  NaN and infinities map to NaR.

The implementation builds the kept bits directly inside a uint64 per
element so that no Python-int big arithmetic is needed; the scalar
Fraction-based reference cross-checks it exhaustively for 8/16-bit posits
and by property tests for 32/64-bit.
"""

from __future__ import annotations

import numpy as np

from repro.bitops import twos_complement
from repro.posit.config import PositConfig

_U1 = np.uint64(1)
_U0 = np.uint64(0)


def encode(values, config: PositConfig) -> np.ndarray:
    """Encode float values into posit bit patterns (uint array).

    Parameters
    ----------
    values:
        Scalar or array of floats (any float dtype; converted to float64,
        which is exact for float16/32 inputs).
    config:
        Target posit format.
    """
    array = np.asarray(values, dtype=np.float64)
    scalar_input = array.ndim == 0
    array = np.atleast_1d(array)

    n = config.nbits
    es = config.es
    useed_log2 = config.useed_log2

    nar = np.isnan(array) | np.isinf(array)
    zero = array == 0.0
    negative = np.signbit(array) & ~zero
    magnitude = np.abs(array)

    # Saturation: |x| >= maxpos -> maxpos, 0 < |x| <= minpos -> minpos.
    sat_hi = magnitude >= config.maxpos
    sat_lo = (magnitude <= config.minpos) & ~zero
    # Values handled by the general path below.
    general = ~(zero | nar | sat_hi | sat_lo)

    # Exact significand decomposition: magnitude = M * 2**(h - 52) with
    # M in [2**52, 2**53).  frexp is exact; the float64 -> uint64 cast of
    # mant * 2**53 is exact because the product is an integer < 2**53.
    safe_mag = np.where(general, magnitude, 1.0)
    mant, exp = np.frexp(safe_mag)
    h = exp.astype(np.int64) - 1
    m53 = np.ldexp(mant, 53).astype(np.uint64)
    f52 = m53 - (_U1 << np.uint64(52))  # 52 fraction bits

    # Regime/exponent split of the scale h = useed_log2 * r + e.
    regime = np.floor_divide(h, useed_log2)
    e = (h - useed_log2 * regime).astype(np.uint64)

    # Regime field: r >= 0 -> (r+1) ones then a zero; r < 0 -> (-r) zeros
    # then a one.  regime_len counts the terminating bit.  On the general
    # path r is within [-(n-2), n-3], so regime_len <= n-1 always fits.
    r_pos = regime >= 0
    safe_r = np.where(general, regime, 0)
    regime_len = np.where(r_pos, safe_r + 2, -safe_r + 1).astype(np.int64)
    ones_run = np.where(r_pos, safe_r + 1, 0).astype(np.uint64)
    regime_pattern = np.where(
        r_pos,
        ((_U1 << ones_run) - _U1) << _U1,
        _U1,
    ).astype(np.uint64)

    # Assemble the kept n-1 bits below the (zero) sign bit.
    rem = (n - 1) - regime_len  # bits left for exponent + fraction
    pattern = regime_pattern << np.maximum(rem, 0).astype(np.uint64)

    guard = np.zeros(array.shape, dtype=bool)
    sticky = np.zeros(array.shape, dtype=bool)

    full_exp = rem >= es
    # --- exponent fully kept --------------------------------------------
    nf = np.where(full_exp, rem - es, 0).astype(np.int64)
    pattern_full = pattern | (e << nf.astype(np.uint64))
    wide_frac = nf >= 52
    # fraction fully kept (posit64 near 1): shift fraction up.
    up_shift = np.where(wide_frac, nf - 52, 0).astype(np.uint64)
    pattern_wide = pattern_full | (f52 << up_shift)
    # fraction truncated: keep top nf bits, guard/sticky from the rest.
    down_shift = np.where(~wide_frac, 52 - nf, 0).astype(np.uint64)
    kept_frac = f52 >> down_shift
    pattern_narrow = pattern_full | kept_frac
    guard_shift = np.where(~wide_frac & (nf <= 51), 51 - nf, 0).astype(np.uint64)
    guard_narrow = ((f52 >> guard_shift) & _U1).astype(bool)
    sticky_mask = (_U1 << guard_shift) - _U1
    sticky_narrow = (f52 & sticky_mask) != 0

    # --- exponent truncated (very long regimes) -------------------------
    de = np.where(~full_exp, es - np.maximum(rem, 0), 1).astype(np.uint64)
    pattern_trunc = pattern | (e >> de)
    guard_trunc = ((e >> (de - _U1)) & _U1).astype(bool)
    low_exp_mask = (_U1 << (de - _U1)) - _U1
    sticky_trunc = ((e & low_exp_mask) != 0) | (f52 != 0)

    pattern = np.where(
        full_exp,
        np.where(wide_frac, pattern_wide, pattern_narrow),
        pattern_trunc,
    )
    guard = np.where(full_exp, np.where(wide_frac, False, guard_narrow), guard_trunc)
    sticky = np.where(full_exp, np.where(wide_frac, False, sticky_narrow), sticky_trunc)

    # Round-to-nearest-even on the bit string.
    round_up = guard & (sticky | ((pattern & _U1).astype(bool)))
    pattern = pattern + round_up.astype(np.uint64)

    # Clamp: never round a nonzero magnitude to zero or past maxpos.
    pattern = np.maximum(pattern, np.uint64(config.minpos_pattern))
    pattern = np.minimum(pattern, np.uint64(config.maxpos_pattern))

    # Specials and saturation override the general path.
    pattern = np.where(sat_hi, np.uint64(config.maxpos_pattern), pattern)
    pattern = np.where(sat_lo, np.uint64(config.minpos_pattern), pattern)
    pattern = np.where(negative, twos_complement(pattern, n), pattern)
    pattern = np.where(zero, np.uint64(config.zero_pattern), pattern)
    pattern = np.where(nar, np.uint64(config.nar_pattern), pattern)

    result = pattern.astype(config.dtype)
    if scalar_input:
        return result[0]
    return result


def encode32(values) -> np.ndarray:
    """Convenience: encode to standard posit32 patterns."""
    from repro.posit.config import POSIT32

    return encode(values, POSIT32)
