"""Vectorized posit → float64 decoding.

Implements the 2022 standard's direct formula (the paper's Eq. 2)

    p = ((1 - 3s) + f) * 2**((1 - 2s) * (useed_log2 * r + e + s))

on raw bit patterns, without two's-complementing negatives.  The scalar
Fraction-based reference in :mod:`repro.posit._reference` cross-checks
this (and the classic two's-complement form) in the test suite.

Results are exact float64 values for every posit of width <= 32 (their
fractions have at most 27 bits) and nearest-float64 for posit64 values
whose fraction exceeds 52 bits.
"""

from __future__ import annotations

import numpy as np

from repro.posit.config import PositConfig
from repro.posit.fields import FieldDecomposition, decompose


def scale_of(fields: FieldDecomposition, config: PositConfig) -> np.ndarray:
    """Signed power-of-two scale per element: (1-2s)(useed_log2*r+e+s)."""
    s = fields.sign
    return (1 - 2 * s) * (config.useed_log2 * fields.regime + fields.exponent + s)


def decode(bits, config: PositConfig) -> np.ndarray:
    """Decode posit bit patterns to float64 (NaR → NaN, zero → 0.0)."""
    work = np.asarray(bits)
    scalar_input = work.ndim == 0
    work = np.atleast_1d(work)
    fields = decompose(work, config)

    s = fields.sign
    m = fields.fraction_bits
    # Fold the mantissa into a single integer so the one uint64 ->
    # float64 conversion is the only rounding (posit64 fractions exceed
    # 52 bits; adding (1-3s) + f in floats would double-round):
    #   s = 0: (1+f)      * 2**scale = (2**m     + f_int) * 2**(scale-m)
    #   s = 1: ((1-3)+f)  * 2**scale = -(2**(m+1) - f_int) * 2**(scale-m)
    m_u = m.astype(np.uint64)
    positive_int = (np.uint64(1) << m_u) + fields.fraction
    negative_int = (np.uint64(1) << (m_u + np.uint64(1))) - fields.fraction
    combined = np.where(s == 0, positive_int, negative_int)
    sign_factor = np.where(s == 0, 1.0, -1.0)
    scale = scale_of(fields, config).astype(np.int64)

    values = sign_factor * np.ldexp(combined.astype(np.float64), scale - m)
    values = np.where(fields.is_zero, 0.0, values)
    values = np.where(fields.is_nar, np.nan, values)
    if scalar_input:
        return values[0]
    return values


def decode32(bits) -> np.ndarray:
    """Convenience: decode standard posit32 patterns."""
    from repro.posit.config import POSIT32

    return decode(bits, POSIT32)
