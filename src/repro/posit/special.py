"""Special posit values and predicates (NaR, zero, minpos/maxpos)."""

from __future__ import annotations

import numpy as np

from repro.posit.config import PositConfig


def is_nar(bits, config: PositConfig) -> np.ndarray:
    """True where the pattern is NaR (sign bit set, all others zero)."""
    work = np.asarray(bits).astype(np.uint64, copy=False) & np.uint64(config.mask)
    return work == np.uint64(config.nar_pattern)


def is_zero(bits, config: PositConfig) -> np.ndarray:
    """True where the pattern is exactly zero."""
    work = np.asarray(bits).astype(np.uint64, copy=False) & np.uint64(config.mask)
    return work == np.uint64(config.zero_pattern)


def is_negative(bits, config: PositConfig) -> np.ndarray:
    """True where the posit value is negative (sign set, not NaR)."""
    work = np.asarray(bits).astype(np.uint64, copy=False) & np.uint64(config.mask)
    sign_set = (work & np.uint64(config.sign_mask)) != 0
    return sign_set & (work != np.uint64(config.nar_pattern))


def nar(config: PositConfig) -> np.integer:
    """The NaR pattern as a NumPy scalar of the storage dtype."""
    return config.dtype.type(config.nar_pattern)


def zero(config: PositConfig) -> np.integer:
    """The zero pattern as a NumPy scalar of the storage dtype."""
    return config.dtype.type(config.zero_pattern)


def maxpos(config: PositConfig) -> np.integer:
    """Pattern of the largest positive value."""
    return config.dtype.type(config.maxpos_pattern)


def minpos(config: PositConfig) -> np.integer:
    """Pattern of the smallest positive value."""
    return config.dtype.type(config.minpos_pattern)
