"""Quire: the posit standard's exact accumulator.

The quire is a wide fixed-point register that accumulates sums and dot
products without intermediate rounding; only the final conversion back to
posit rounds.  The standard sizes it at 16*nbits bits, enough to hold any
product of two posits with (nbits - 1) * 2**(es + 2) ... in practice the
defining property is *exactness*, which this implementation guarantees by
accumulating in arbitrary-precision rational arithmetic keyed to the
fixed-point grid.

This module exists because a posit library without a quire would not be a
credible drop-in replacement (reproducibility of dot products is one of
the headline posit claims the paper's introduction cites), and because it
provides the exact baseline used to measure error in the example
applications.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.posit._reference import decode_exact, encode_exact
from repro.posit.config import PositConfig


class Quire:
    """Exact accumulator for one posit format.

    The accumulator state is a Fraction, which on the quire's dyadic grid
    is always exact.  NaR poisons the accumulator until :meth:`clear`.
    """

    def __init__(self, config: PositConfig) -> None:
        self.config = config
        self._sum = Fraction(0)
        self._nar = False

    # -- state -------------------------------------------------------------

    @property
    def is_nar(self) -> bool:
        """Whether the accumulator has been poisoned by NaR."""
        return self._nar

    def clear(self) -> None:
        """Reset to exact zero."""
        self._sum = Fraction(0)
        self._nar = False

    def value_exact(self) -> Fraction | None:
        """The exact accumulated value (None when poisoned)."""
        return None if self._nar else self._sum

    # -- accumulation --------------------------------------------------------

    def add_posit(self, pattern: int) -> "Quire":
        """Accumulate a single posit value."""
        value = decode_exact(int(pattern), self.config)
        if value is None:
            self._nar = True
        elif not self._nar:
            self._sum += value
        return self

    def add_product(self, a: int, b: int) -> "Quire":
        """Accumulate the exact product of two posits (fused MAC)."""
        va = decode_exact(int(a), self.config)
        vb = decode_exact(int(b), self.config)
        if va is None or vb is None:
            self._nar = True
        elif not self._nar:
            self._sum += va * vb
        return self

    def subtract_product(self, a: int, b: int) -> "Quire":
        """Accumulate the negated exact product of two posits."""
        va = decode_exact(int(a), self.config)
        vb = decode_exact(int(b), self.config)
        if va is None or vb is None:
            self._nar = True
        elif not self._nar:
            self._sum -= va * vb
        return self

    # -- termination ---------------------------------------------------------

    def to_posit(self) -> int:
        """Round the accumulated value to the nearest posit pattern."""
        if self._nar:
            return self.config.nar_pattern
        return encode_exact(self._sum, self.config)


def dot(a, b, config: PositConfig) -> int:
    """Exact dot product of two posit-pattern vectors, rounded once.

    This is the quire's flagship operation: sum(a[i] * b[i]) with no
    intermediate rounding.
    """
    a_arr = np.asarray(a).reshape(-1)
    b_arr = np.asarray(b).reshape(-1)
    if a_arr.shape != b_arr.shape:
        raise ValueError(f"shape mismatch: {a_arr.shape} vs {b_arr.shape}")
    quire = Quire(config)
    for pa, pb in zip(a_arr, b_arr):
        quire.add_product(int(pa), int(pb))
    return quire.to_posit()


def total(values, config: PositConfig) -> int:
    """Exact sum of posit patterns, rounded once at the end."""
    quire = Quire(config)
    for pattern in np.asarray(values).reshape(-1):
        quire.add_posit(int(pattern))
    return quire.to_posit()
