"""Vectorized posit field decomposition and bit classification.

The paper's entire analysis is phrased in terms of *which field a flipped
bit lands in* (sign, regime body R_0..R_{k-1}, terminating regime bit R_k,
exponent, fraction).  Because posit field boundaries move with the value,
classification is per-element; everything here is vectorized over NumPy
arrays of bit patterns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.bitops import leading_run_length
from repro.posit.config import PositConfig


class PositField(enum.IntEnum):
    """Field a bit position belongs to within one particular posit."""

    SIGN = 0
    REGIME = 1        # R_0 .. R_{k-1}: the run of identical bits
    REGIME_TERM = 2   # R_k: the terminating (opposite) bit
    EXPONENT = 3
    FRACTION = 4

    def short_name(self) -> str:
        return {
            PositField.SIGN: "S",
            PositField.REGIME: "R",
            PositField.REGIME_TERM: "Rk",
            PositField.EXPONENT: "E",
            PositField.FRACTION: "F",
        }[self]


#: Coarse grouping used in several of the paper's plots, where R_k is
#: shown as part of the regime.
COARSE_FIELD_OF = {
    PositField.SIGN: PositField.SIGN,
    PositField.REGIME: PositField.REGIME,
    PositField.REGIME_TERM: PositField.REGIME,
    PositField.EXPONENT: PositField.EXPONENT,
    PositField.FRACTION: PositField.FRACTION,
}


@dataclass(frozen=True)
class FieldDecomposition:
    """Per-element posit field contents, all int64/uint64 arrays.

    Attributes
    ----------
    sign:
        0/1 sign bit.
    run:
        Number of identical leading regime bits (the paper's *k*).
    has_terminator:
        Whether an opposite bit R_k exists within the word.
    regime_len:
        Bits occupied by the regime including R_k when present.
    regime:
        The regime value *r* (``k-1`` when the run is ones, ``-k`` when
        zeros), read from the raw bits per the standard's direct form.
    exponent:
        Exponent value with truncated bits reading as zero (0..2**es-1).
    exponent_bits_present:
        How many exponent bits physically exist in the word (0..es).
    fraction_bits:
        Number of fraction bits *m* present (0..nbits-3-es).
    fraction:
        Unsigned integer contents of the fraction field.
    is_zero / is_nar:
        Special-pattern masks.
    """

    sign: np.ndarray
    run: np.ndarray
    has_terminator: np.ndarray
    regime_len: np.ndarray
    regime: np.ndarray
    exponent: np.ndarray
    exponent_bits_present: np.ndarray
    fraction_bits: np.ndarray
    fraction: np.ndarray
    is_zero: np.ndarray
    is_nar: np.ndarray


def decompose(bits, config: PositConfig) -> FieldDecomposition:
    """Split raw posit patterns into their fields, vectorized."""
    n = config.nbits
    work = np.asarray(bits).astype(np.uint64, copy=False)
    mask = np.uint64(config.mask)
    work = work & mask

    sign = ((work >> np.uint64(n - 1)) & np.uint64(1)).astype(np.int64)
    body_width = n - 1
    body = work & np.uint64(config.mask >> 1)

    run = leading_run_length(body, body_width).astype(np.int64)
    has_terminator = run < body_width
    regime_len = run + has_terminator.astype(np.int64)

    top_bit = ((body >> np.uint64(body_width - 1)) & np.uint64(1)).astype(np.int64)
    regime = np.where(top_bit == 1, run - 1, -run)

    rem = body_width - regime_len
    e_avail = np.minimum(rem, config.es)
    e_avail = np.maximum(e_avail, 0)
    # Exponent bits sit at [rem - e_avail, rem); pad truncated low bits
    # with zeros by shifting back up to es bits.
    shift_down = np.maximum(rem - e_avail, 0).astype(np.uint64)
    raw_exp = (body >> shift_down) & ((np.uint64(1) << e_avail.astype(np.uint64)) - np.uint64(1))
    exponent = (raw_exp << (config.es - e_avail).astype(np.uint64)).astype(np.int64)
    exponent = np.where(e_avail > 0, exponent, 0)

    m = np.maximum(rem - config.es, 0)
    frac_mask = (np.uint64(1) << m.astype(np.uint64)) - np.uint64(1)
    fraction = (body & frac_mask).astype(np.uint64)
    fraction = np.where(m > 0, fraction, np.uint64(0))

    is_zero = work == np.uint64(config.zero_pattern)
    is_nar = work == np.uint64(config.nar_pattern)

    return FieldDecomposition(
        sign=sign,
        run=run,
        has_terminator=np.asarray(has_terminator),
        regime_len=regime_len,
        regime=regime,
        exponent=exponent,
        exponent_bits_present=e_avail,
        fraction_bits=m,
        fraction=fraction,
        is_zero=np.asarray(is_zero),
        is_nar=np.asarray(is_nar),
    )


def classify_bit(bits, bit_index: int, config: PositConfig) -> np.ndarray:
    """Field of ``bit_index`` (LSB == 0) within each posit of ``bits``.

    Returns an int64 array of :class:`PositField` values.  Zero and NaR
    patterns are classified by the same geometric rules (their regime run
    spans the whole body), which matches how a fault lands in storage.
    """
    n = config.nbits
    if not 0 <= bit_index < n:
        raise ValueError(f"bit_index must be in [0, {n}), got {bit_index}")
    fields = decompose(bits, config)
    return classify_bit_from_fields(fields, bit_index, config)


def classify_bit_from_fields(
    fields: FieldDecomposition, bit_index: int, config: PositConfig
) -> np.ndarray:
    """Same as :func:`classify_bit` given a precomputed decomposition."""
    n = config.nbits
    shape = np.shape(fields.sign)
    out = np.full(shape, PositField.FRACTION, dtype=np.int64)

    if bit_index == n - 1:
        out[...] = PositField.SIGN
        return out

    regime_low = n - 1 - fields.regime_len  # lowest bit of the regime field
    rem = n - 1 - fields.regime_len
    exp_low = rem - fields.exponent_bits_present

    in_regime = bit_index >= regime_low
    is_terminator = fields.has_terminator & (bit_index == regime_low)
    in_exponent = (~in_regime) & (bit_index >= exp_low)

    out = np.where(in_regime, PositField.REGIME, out)
    out = np.where(is_terminator, PositField.REGIME_TERM, out)
    out = np.where(in_exponent, PositField.EXPONENT, out)
    return out


def classify_bits_array(
    fields: FieldDecomposition, bit_indices, config: PositConfig
) -> np.ndarray:
    """Vectorized :func:`classify_bit_from_fields` over a *bit array*.

    ``bit_indices`` is any int array broadcastable against the
    decomposition's element shape — e.g. a ``(B, 1)`` column against a
    ``(B, T)`` block classifies row ``i`` at bit ``b[i]`` in one pass.
    """
    n = config.nbits
    bit = np.asarray(bit_indices, dtype=np.int64)
    regime_low = n - 1 - fields.regime_len
    exp_low = regime_low - fields.exponent_bits_present

    in_regime = bit >= regime_low
    is_terminator = fields.has_terminator & (bit == regime_low)
    in_exponent = (~in_regime) & (bit >= exp_low)

    out = np.full(in_regime.shape, int(PositField.FRACTION), dtype=np.int64)
    out = np.where(in_regime, int(PositField.REGIME), out)
    out = np.where(is_terminator, int(PositField.REGIME_TERM), out)
    out = np.where(in_exponent, int(PositField.EXPONENT), out)
    out = np.where(bit == n - 1, int(PositField.SIGN), out)
    return out


def classify_all_bits(bits, config: PositConfig) -> np.ndarray:
    """Field map of every bit of every posit: shape (*bits.shape, nbits).

    ``result[..., j]`` is the field of bit ``j`` (LSB == 0).
    """
    fields = decompose(bits, config)
    shape = np.shape(np.asarray(bits))
    out = np.empty(shape + (config.nbits,), dtype=np.int64)
    for j in range(config.nbits):
        out[..., j] = classify_bit_from_fields(fields, j, config)
    return out


def regime_k(bits, config: PositConfig) -> np.ndarray:
    """The paper's regime size *k*: count of identical leading regime bits."""
    return decompose(bits, config).run


def layout_string(pattern: int, config: PositConfig) -> str:
    """Render a pattern with field separators, e.g. ``0|10|00|0101...``.

    Used by the worked-example experiments to print figures 6, 12, 13, 15
    in the paper's notation.
    """
    n = config.nbits
    pattern = int(pattern) & config.mask
    bit_string = format(pattern, f"0{n}b")
    fields = decompose(np.array([pattern], dtype=np.uint64), config)
    regime_len = int(fields.regime_len[0])
    e_bits = int(fields.exponent_bits_present[0])
    parts = [bit_string[0]]
    cursor = 1
    parts.append(bit_string[cursor : cursor + regime_len])
    cursor += regime_len
    if e_bits:
        parts.append(bit_string[cursor : cursor + e_bits])
        cursor += e_bits
    if cursor < n:
        parts.append(bit_string[cursor:])
    return "|".join(part for part in parts if part)
