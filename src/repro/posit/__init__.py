"""Pure-Python/NumPy posit number system (Posit Standard 2022).

This package replaces the paper's SoftPosit dependency.  It provides
bit-exact float <-> posit conversion with round-to-nearest-even, per-value
field decomposition (sign / regime / R_k / exponent / fraction — the
vocabulary of the paper's analysis), correctly rounded arithmetic, and an
exact quire accumulator, for any width from 3 to 64 bits.
"""

from repro.posit._reference import (
    decode_exact,
    decode_exact_twos_complement,
    decode_float,
    encode_exact,
)
from repro.posit.array import PositArray
from repro.posit.arithmetic import (
    absolute,
    add,
    compare,
    divide,
    fma,
    multiply,
    negate,
    sqrt,
    subtract,
)
from repro.posit.config import (
    POSIT8,
    POSIT16,
    POSIT32,
    POSIT64,
    STANDARD_CONFIGS,
    PositConfig,
    standard_config,
)
from repro.posit.convert import convert, is_widening_exact, round_trip_is_identity
from repro.posit.decode import decode, decode32
from repro.posit.encode import encode, encode32
from repro.posit.fields import (
    COARSE_FIELD_OF,
    FieldDecomposition,
    PositField,
    classify_all_bits,
    classify_bit,
    decompose,
    layout_string,
    regime_k,
)
from repro.posit.quire import Quire, dot, total
from repro.posit.special import is_nar, is_negative, is_zero, maxpos, minpos, nar, zero
from repro.posit.tables import lattice_neighbors, positive_values_sorted, value_table
from repro.posit.ulp import next_down, next_up, relative_spacing_at, spacing_at, ulp

__all__ = [
    "COARSE_FIELD_OF",
    "FieldDecomposition",
    "POSIT16",
    "POSIT32",
    "POSIT64",
    "POSIT8",
    "PositArray",
    "PositConfig",
    "PositField",
    "Quire",
    "STANDARD_CONFIGS",
    "absolute",
    "add",
    "classify_all_bits",
    "classify_bit",
    "compare",
    "convert",
    "decode",
    "decode32",
    "decode_exact",
    "decode_exact_twos_complement",
    "decode_float",
    "decompose",
    "divide",
    "dot",
    "encode",
    "encode32",
    "encode_exact",
    "fma",
    "is_nar",
    "is_negative",
    "is_widening_exact",
    "is_zero",
    "lattice_neighbors",
    "layout_string",
    "maxpos",
    "minpos",
    "multiply",
    "nar",
    "negate",
    "next_down",
    "next_up",
    "positive_values_sorted",
    "relative_spacing_at",
    "spacing_at",
    "ulp",
    "regime_k",
    "round_trip_is_identity",
    "sqrt",
    "standard_config",
    "subtract",
    "total",
    "value_table",
    "zero",
]
