"""Experiment harness: every paper table/figure is one registered runner.

An experiment takes scale parameters (dataset size, trials per bit, seed)
and returns an :class:`ExperimentOutput` holding figures (series data),
tables, free-text findings, and named boolean *checks* — the qualitative
claims the paper makes about that figure ("IEEE error spikes in the
exponent", "no R_k spike below one", ...).  Tests and benches assert the
checks; the CLI renders the figures/tables; EXPERIMENTS.md records both.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Iterable

from repro.inject.campaign import PAPER_TRIALS_PER_BIT
from repro.reporting.series import Figure, Table
from repro.reporting.tables import render_series_table, render_table


@dataclass(frozen=True)
class ExperimentParams:
    """Scale knobs shared by every experiment.

    Defaults are sized for an interactive laptop run (seconds per
    experiment); ``paper_scale`` reproduces the paper's trial counts and
    a larger synthetic population.  ``jobs`` feeds the campaign runner
    (``1`` in-process, ``None`` auto-sizes to the CPU count) and never
    changes results — campaigns are bit-identical for any worker count.
    """

    data_size: int = 1 << 17
    trials_per_bit: int = PAPER_TRIALS_PER_BIT
    seed: int = 2023
    jobs: int | None = 1

    @classmethod
    def quick(cls) -> "ExperimentParams":
        """CI-speed parameters."""
        return cls(data_size=1 << 13, trials_per_bit=40, seed=2023)

    @classmethod
    def paper_scale(cls) -> "ExperimentParams":
        """Paper-sized trial grid over a large synthetic population."""
        return cls(data_size=1 << 22, trials_per_bit=PAPER_TRIALS_PER_BIT, seed=2023)


@dataclass
class ExperimentOutput:
    """Everything one experiment produced."""

    exp_id: str
    title: str
    figures: list[Figure] = dataclass_field(default_factory=list)
    tables: list[Table] = dataclass_field(default_factory=list)
    findings: list[str] = dataclass_field(default_factory=list)
    checks: dict[str, bool] = dataclass_field(default_factory=dict)

    def check(self, name: str, passed: bool) -> None:
        """Record a named qualitative claim check."""
        self.checks[name] = bool(passed)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def failed_checks(self) -> list[str]:
        return [name for name, passed in self.checks.items() if not passed]

    def render(self) -> str:
        """Plain-text report of the whole experiment."""
        blocks = [f"### {self.exp_id}: {self.title}"]
        for table in self.tables:
            blocks.append(render_table(table))
        for figure in self.figures:
            blocks.append(render_series_table(figure))
        if self.findings:
            blocks.append("findings:")
            blocks.extend(f"  - {finding}" for finding in self.findings)
        if self.checks:
            blocks.append("checks:")
            blocks.extend(
                f"  [{'PASS' if passed else 'FAIL'}] {name}"
                for name, passed in self.checks.items()
            )
        return "\n\n".join(blocks)


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry for one experiment."""

    exp_id: str
    title: str
    paper_ref: str
    runner: Callable[[ExperimentParams], ExperimentOutput]

    def run(self, params: ExperimentParams | None = None) -> ExperimentOutput:
        return self.runner(params or ExperimentParams())


_REGISTRY: dict[str, ExperimentSpec] = {}


def register_experiment(exp_id: str, title: str, paper_ref: str):
    """Decorator registering a runner under an experiment id."""

    def wrap(runner: Callable[[ExperimentParams], ExperimentOutput]):
        if exp_id in _REGISTRY:
            raise KeyError(f"experiment {exp_id!r} already registered")
        _REGISTRY[exp_id] = ExperimentSpec(
            exp_id=exp_id, title=title, paper_ref=paper_ref, runner=runner
        )
        return runner

    return wrap


def experiment_ids() -> list[str]:
    """All registered experiment ids (importing the package registers all)."""
    return sorted(_REGISTRY)


def get_experiment(exp_id: str) -> ExperimentSpec:
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        known = ", ".join(experiment_ids())
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") from None


def run_experiments(
    ids: Iterable[str] | None = None,
    params: ExperimentParams | None = None,
) -> list[ExperimentOutput]:
    """Run several (default: all) experiments."""
    wanted = list(ids) if ids is not None else experiment_ids()
    return [get_experiment(exp_id).run(params) for exp_id in wanted]
