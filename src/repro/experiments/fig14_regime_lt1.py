"""Figure 14 (and the Section 5.4.2 edge case): posits below one.

For |p| < 1 the regime is a run of zeros; flipping R_k still expands the
regime, but the value can only *shrink*, so the relative error saturates
near 1 instead of spiking (the paper's worked ratio ~= 1).  The sign bit
remains a big spike.  The separate edge case: for regime size 1, flipping
the sole regime bit (bit 30) both expands and *inverts* the regime,
producing absolute-error spikes the paper measures up to 1e11.

Data: sub-one-rich fields (CESM cloud/omega, Hurricane precip/cloud).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.edgecases import FlipEvent, classify_flip
from repro.analysis.stratify import (
    group_by_regime_size,
    magnitude_split,
    terminating_bit_position,
)
from repro.experiments._campaigns import field_campaign, merged_records
from repro.experiments.base import ExperimentOutput, ExperimentParams, register_experiment
from repro.posit import POSIT32, encode
from repro.reporting.series import Figure, Series, Table

POOL_FIELDS = ("cesm/cloud", "cesm/omega", "hurricane/precipf48")
NBITS = 32
MAX_K = 6


@register_experiment(
    "fig14",
    "Average relative error in posits with magnitude < 1, by regime size",
    "Figure 14 + Section 5.4.2",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(
        exp_id="fig14",
        title="Per-bit relative error of |p| < 1 posits, stratified by regime size",
    )
    results = [field_campaign(key, "posit32", params) for key in POOL_FIELDS]
    records = merged_records(results)
    _, less = magnitude_split(records)
    groups = group_by_regime_size(less, NBITS, max_k=MAX_K, min_trials=64)

    figure = Figure(
        title="Fig. 14: mean relative error per bit, |p| < 1",
        x_label="bit position",
        y_label="mean relative error",
    )
    bits = np.arange(NBITS)
    no_spike_checks = []
    sign_spike_checks = []
    for group in groups:
        curve = group.aggregate.mean_rel_err
        figure.add(Series(f"k={group.k}", bits, curve))
        rk = terminating_bit_position(group.k, NBITS)
        rk_error = curve[rk]
        # Section 5.4.2: "In most cases, the relative error is near one"
        # at the terminating bit — no spike, bounded by a small constant.
        if np.isfinite(rk_error):
            no_spike_checks.append(rk_error < 10.0)
        sign_error = curve[NBITS - 1]
        body = curve[: NBITS - 1].copy()
        if group.k == 1:
            # The paper excludes the k = 1 sole-regime-bit (bit 30)
            # inversion spike from Fig. 14 "to make the general trend
            # more readable"; it is analyzed separately below.
            body[30] = np.nan
        body = body[np.isfinite(body)]
        if np.isfinite(sign_error) and body.size:
            sign_spike_checks.append(sign_error > np.max(body))
        output.findings.append(
            f"k={group.k}: rel err at R_k (bit {rk}) = {rk_error:.3g}, "
            f"at sign bit = {sign_error:.3g} ({group.trial_count} trials)"
        )
    output.figures.append(figure)
    output.check("groups_cover_multiple_regime_sizes", len(groups) >= 3)
    output.check("no_rk_relative_error_spike_below_one",
                 bool(no_spike_checks) and all(no_spike_checks))
    output.check("sign_bit_dominates_below_one",
                 bool(sign_spike_checks) and all(sign_spike_checks))

    # ---- edge case: k = 1 regime inversion at bit 30 ----------------------
    k1 = less.for_regime_size(1)
    table = Table(
        title="Section 5.4.2 edge case: sole-regime-bit (bit 30) flips, k = 1, |p| < 1",
        columns=["quantity", "value"],
    )
    inversion_ok = False
    abs_spike_ok = False
    if len(k1):
        k1_bit30 = k1.for_bit(30)
        if len(k1_bit30):
            patterns = encode(k1_bit30.original, POSIT32)
            events = classify_flip(patterns, 30, POSIT32)
            inversion_fraction = float(np.mean(events == FlipEvent.REGIME_INVERSION))
            abs_errors = k1_bit30.abs_err[np.isfinite(k1_bit30.abs_err)]
            other_bits = k1.select(k1.bit < 30)
            other_abs = other_bits.abs_err[np.isfinite(other_bits.abs_err)]
            spike = float(np.max(abs_errors)) if abs_errors.size else float("nan")
            typical = float(np.median(other_abs)) if other_abs.size else float("nan")
            table.add_row(["bit-30 flips classified as regime inversion", inversion_fraction])
            table.add_row(["max abs err at bit 30", spike])
            table.add_row(["median abs err at other bits", typical])
            inversion_ok = inversion_fraction > 0.95
            abs_spike_ok = (
                np.isfinite(spike) and np.isfinite(typical) and typical > 0
                and spike / typical > 1e3
            )
    output.tables.append(table)
    output.check("bit30_flip_inverts_regime_for_k1", inversion_ok)
    output.check("bit30_absolute_error_spike", abs_spike_ok)
    return output
