"""Extension: regime populations explain the error-band width (Sec. 5.4.3).

The paper observes that "datasets with large variances and medians have a
wider error distribution since there are more values with larger numbers
of regime bits" — the R_k spike positions spread over more bit positions.
This experiment measures that directly: for every Table 1 field, the
regime-size histogram, the bit band its R_k spikes occupy, and the rank
correlation between a field's magnitude spread (std of log2 |x|) and its
band width.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.population import (
    band_width_vs_spread,
    rank_correlation,
    regime_population,
)
from repro.datasets.registry import get as get_preset, keys
from repro.experiments.base import ExperimentOutput, ExperimentParams, register_experiment
from repro.posit.config import POSIT32
from repro.reporting.series import Table


@register_experiment(
    "ext-population",
    "Regime-size populations and error-band width (Section 5.4.3)",
    "Section 5.4.3",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(
        exp_id="ext-population",
        title="Magnitude spread determines where posit error spikes land",
    )
    fields = {
        key: get_preset(key).generate(seed=params.seed, size=min(params.data_size, 1 << 15))
        for key in keys()
    }
    rows = band_width_vs_spread(fields, POSIT32)

    table = Table(
        title="Per-field regime population and R_k spike band",
        columns=["field", "spread(log2)", "dominant k", "distinct k",
                 "band bits", "band width"],
    )
    for row in rows:
        table.add_row([
            row["field"], row["spread"], row["dominant_k"],
            row["distinct_regimes"],
            f"{row['band_low']}..{row['band_high']}", row["band_width"],
        ])
    output.tables.append(table)

    spreads = [row["spread"] for row in rows]
    widths = [row["band_width"] for row in rows]
    distinct = [row["distinct_regimes"] for row in rows]
    # "More values with larger numbers of regime bits" = more regime
    # sizes populated; the 95%-mass band width is a coarser (tie-heavy)
    # proxy, so the distinct-regime count is the primary statistic.
    correlation_distinct = rank_correlation(spreads, distinct)
    correlation_width = rank_correlation(spreads, widths)
    output.check("spread_correlates_with_regime_occupancy", correlation_distinct > 0.4)
    output.check("band_width_correlation_nonnegative", correlation_width > -0.1)
    output.findings.append(
        f"Spearman(spread, distinct regime sizes) = {correlation_distinct:.2f}; "
        f"Spearman(spread, 95%-band width) = {correlation_width:.2f} over "
        f"{len(rows)} fields"
    )

    # Sanity: the most plentiful regime size across HACC/Hurricane pools
    # is small (the paper picks k=1 as 'most plentiful in our data pool').
    pool = np.concatenate([fields["hacc/vx"], fields["hurricane/uf30"]])
    population = regime_population(pool, POSIT32)
    output.check("hacc_hurricane_dominant_regime_small", population.dominant_size() <= 2)
    output.findings.append(
        f"dominant regime size in the HACC+Hurricane pool: "
        f"k={population.dominant_size()} "
        f"({100 * population.fraction(population.dominant_size()):.0f}% of values)"
    )

    # Narrow-spread fields (relhum-like) concentrate in few regime sizes.
    narrow = regime_population(fields["cesm/relhum"], POSIT32)
    wide = regime_population(fields["nyx/velocity-x"], POSIT32)
    output.check(
        "wide_field_occupies_more_regimes",
        len(wide.sizes) > len(narrow.sizes),
    )
    return output
