"""Figure 3: relative error per flipped bit of 186.25 in 32-bit IEEE-754.

The paper's warm-up figure: take a single float (186.25), flip each of
its 32 bits in turn, and plot the relative error.  Checks: monotone
exponential growth through the fraction, the huge exponent spikes, and
the sign bit landing at exactly 2.  We add the analytic (Elliott-style)
prediction as a second series and the posit32 counterpart as a third for
contrast.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentOutput, ExperimentParams, register_experiment
from repro.ieee import BINARY32, flip_float_bit, predict_flip
from repro.posit import POSIT32, decode as posit_decode, encode as posit_encode
from repro.reporting.series import Figure, Series

EXAMPLE_VALUE = 186.25


def relative_errors_per_bit(value: float) -> np.ndarray:
    """Measured relative error of flipping each bit of one float32."""
    original = float(np.float32(value))
    errors = np.empty(BINARY32.nbits)
    for bit in range(BINARY32.nbits):
        faulty = float(flip_float_bit(np.float32(value), bit, BINARY32))
        errors[bit] = abs(original - faulty) / abs(original)
    return errors


def posit_relative_errors_per_bit(value: float) -> np.ndarray:
    """Posit32 counterpart: flip each bit of the posit encoding."""
    pattern = np.uint32(posit_encode(np.float64(value), POSIT32))
    original = float(posit_decode(pattern, POSIT32))
    errors = np.empty(POSIT32.nbits)
    for bit in range(POSIT32.nbits):
        faulty = float(posit_decode(pattern ^ np.uint32(1 << bit), POSIT32))
        errors[bit] = abs(original - faulty) / abs(original)
    return errors


@register_experiment(
    "fig03",
    "Relative error with bit-flips in the representation of 186.25",
    "Figure 3",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(
        exp_id="fig03",
        title=f"Per-bit relative error for {EXAMPLE_VALUE} (32-bit IEEE-754)",
    )
    bits = np.arange(BINARY32.nbits)
    measured = relative_errors_per_bit(EXAMPLE_VALUE)

    analytic = np.empty(BINARY32.nbits)
    for bit in range(BINARY32.nbits):
        pred = predict_flip(np.asarray([np.float32(EXAMPLE_VALUE)]), bit, BINARY32)
        analytic[bit] = pred.relative_error[0] if pred.valid[0] else np.nan

    posit_errors = posit_relative_errors_per_bit(EXAMPLE_VALUE)

    figure = Figure(
        title="Fig. 3: relative error per flipped bit (186.25)",
        x_label="bit position",
        y_label="relative error",
    )
    figure.add(Series("ieee32 measured", bits, measured))
    figure.add(Series("ieee32 analytic", bits, analytic))
    figure.add(Series("posit32 measured", bits, posit_errors))
    output.figures.append(figure)

    # -- checks: the shape the paper's Fig. 3 shows ------------------------
    fraction = measured[: BINARY32.fraction_bits]
    ratios = fraction[1:] / fraction[:-1]
    output.check("fraction_error_doubles_per_bit", bool(np.allclose(ratios, 2.0, rtol=1e-6)))
    output.check("sign_bit_relative_error_is_2", bool(np.isclose(measured[31], 2.0)))
    # 186.25's exponent is 10000110; its largest *clear* bit is 2**6, so
    # the worst flip multiplies by 2**64 (~1.8e19).
    exponent = measured[BINARY32.fraction_bits : BINARY32.nbits - 1]
    output.check("exponent_spike_dominates", bool(np.max(exponent) > 1e15))
    valid = np.isfinite(analytic)
    output.check(
        "analytic_matches_measured",
        bool(np.allclose(analytic[valid], measured[valid], rtol=1e-12)),
    )
    output.check(
        "posit_worst_bit_far_below_ieee_worst",
        bool(np.nanmax(posit_errors) < np.max(measured) / 1e10),
    )
    output.findings.append(
        f"worst IEEE bit error {np.max(measured):.3e} vs worst posit bit "
        f"error {np.nanmax(posit_errors):.3e}"
    )
    return output
