"""Figure 10: posit vs IEEE-754 mean relative error per bit position.

The headline comparison.  For a Nyx field and a CESM field (the figure's
two panels), run the paper's campaign against both ieee32 and posit32 and
compare the per-bit mean relative error curves.

Checks encode the claims of Section 5.3:

* IEEE shows a sharp, consistent exponential spike toward the MSBs;
* posit upper-bit error is orders of magnitude lower but erratic;
* the fraction slopes are similar in both systems.

``full_survey`` extends the comparison to all sixteen fields (the basis
of the paper's "increased resilience in most cases" conclusion).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.aggregate import aggregate_by_bit
from repro.analysis.distribution import erraticness
from repro.datasets.registry import keys
from repro.experiments._campaigns import field_campaign
from repro.experiments.base import ExperimentOutput, ExperimentParams, register_experiment
from repro.reporting.series import Figure, Series, Table

PANEL_FIELDS = ("nyx/velocity-x", "cesm/cloud")
NBITS = 32


def _panel(field_key: str, params: ExperimentParams) -> tuple[Figure, dict[str, np.ndarray]]:
    curves = {}
    figure = Figure(
        title=f"Fig. 10 panel: mean relative error per bit ({field_key})",
        x_label="bit position",
        y_label="mean relative error",
    )
    bits = np.arange(NBITS)
    for target in ("ieee32", "posit32"):
        result = field_campaign(field_key, target, params)
        curve = aggregate_by_bit(result.records, NBITS).mean_rel_err
        curves[target] = curve
        figure.add(Series(target, bits, curve))
    return figure, curves


def _upper_bits(curve: np.ndarray, count: int = 8) -> np.ndarray:
    upper = curve[NBITS - count :]
    return upper[np.isfinite(upper)]


@register_experiment(
    "fig10",
    "Posit vs IEEE-754 mean relative error per bit (Nyx and CESM)",
    "Figure 10",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(
        exp_id="fig10", title="Posit vs IEEE-754 mean relative error per bit position"
    )
    for field_key in PANEL_FIELDS:
        figure, curves = _panel(field_key, params)
        output.figures.append(figure)
        ieee = curves["ieee32"]
        posit = curves["posit32"]

        short = field_key.split("/")[0]
        # IEEE spikes exponentially toward the exponent MSBs.
        output.check(
            f"{short}_ieee_exponent_spike",
            bool(np.nanmax(_upper_bits(ieee)) > 1e15),
        )
        # Posit worst-case upper-bit error is many orders below IEEE's.
        output.check(
            f"{short}_posit_upper_bits_orders_lower",
            bool(np.nanmax(_upper_bits(posit)) < np.nanmax(_upper_bits(ieee)) / 1e6),
        )
        # Fraction slope similarity: log-linear growth rate per bit in the
        # low 16 bits should match within a factor of two.
        def slope(curve: np.ndarray) -> float:
            low = curve[:16]
            mask = np.isfinite(low) & (low > 0)
            if np.sum(mask) < 4:
                return float("nan")
            return float(np.polyfit(np.arange(16)[mask], np.log2(low[mask]), 1)[0])

        ieee_slope = slope(ieee)
        posit_slope = slope(posit)
        output.check(
            f"{short}_fraction_slopes_similar",
            bool(
                np.isfinite(ieee_slope)
                and np.isfinite(posit_slope)
                and 0.5 <= posit_slope / ieee_slope <= 2.0
            ),
        )
        # "More distributed and erratic" is reported, not checked: the
        # IEEE curve is only monotone through the exponent when the data's
        # exponent MSB is mostly clear (multiply side); fields whose
        # magnitudes set it (e.g. Nyx velocities) legitimately show a
        # drop at bit 30, so the comparison is data-dependent.
        ieee_records = field_campaign(field_key, "ieee32", params).records
        posit_records = field_campaign(field_key, "posit32", params).records
        ieee_erratic = erraticness(ieee_records, NBITS)
        posit_erratic = erraticness(posit_records, NBITS)
        output.findings.append(
            f"{field_key}: IEEE worst upper-bit MRE {np.nanmax(_upper_bits(ieee)):.2e}, "
            f"posit {np.nanmax(_upper_bits(posit)):.2e}; fraction slopes "
            f"{ieee_slope:.2f} vs {posit_slope:.2f} bits/bit; erraticness "
            f"{ieee_erratic:.2f} vs {posit_erratic:.2f} decades"
        )
    return output


@register_experiment(
    "survey",
    "Posit vs IEEE resiliency across all sixteen fields",
    "Section 5.3",
)
def full_survey(params: ExperimentParams) -> ExperimentOutput:
    """All-field comparison behind "increased resilience in most cases"."""
    output = ExperimentOutput(
        exp_id="survey", title="Posit vs IEEE-754 resiliency survey (all fields)"
    )
    table = Table(
        title="Per-field worst mean-relative-error and catastrophic rates",
        columns=[
            "field",
            "ieee_worst_mre", "posit_worst_mre",
            "ieee_catastrophic", "posit_catastrophic",
            "posit_wins",
        ],
    )
    wins = 0
    total = 0
    cat_anomalies_explained = []
    for field_key in keys():
        ieee_result = field_campaign(field_key, "ieee32", params)
        posit_result = field_campaign(field_key, "posit32", params)
        ieee_curve = aggregate_by_bit(ieee_result.records, NBITS).mean_rel_err
        posit_curve = aggregate_by_bit(posit_result.records, NBITS).mean_rel_err
        ieee_worst = float(np.nanmax(ieee_curve))
        posit_worst = float(np.nanmax(posit_curve))
        ieee_cat = float(np.mean(ieee_result.records.non_finite))
        posit_cat = float(np.mean(posit_result.records.non_finite))
        if posit_cat > ieee_cat + 1e-12:
            # The one way a single flip makes a posit NaR is flipping the
            # sign bit of an exact zero — so posit catastrophic rates
            # exceed IEEE's only on zero-heavy fields.  Verify that
            # explanation holds for every anomaly.
            zero_fraction = float(
                np.mean(posit_result.records.original == 0.0)
            )
            cat_anomalies_explained.append(zero_fraction > 0.05)
        posit_wins = posit_worst < ieee_worst
        wins += int(posit_wins)
        total += 1
        table.add_row([
            field_key, ieee_worst, posit_worst, ieee_cat, posit_cat,
            "yes" if posit_wins else "no",
        ])
    output.tables.append(table)
    output.check("posit_more_resilient_in_most_cases", wins > total / 2)
    output.check(
        "posit_catastrophic_excess_only_on_zero_heavy_fields",
        all(cat_anomalies_explained),
    )
    if cat_anomalies_explained:
        output.findings.append(
            f"{len(cat_anomalies_explained)} field(s) show higher posit "
            "catastrophic rates, all zero-heavy: flipping the sign bit of "
            "an exact zero yields NaR (a posit-specific hazard the paper "
            "does not discuss)"
        )
    output.findings.append(
        f"posit32 beats ieee32 on worst-bit mean relative error in "
        f"{wins}/{total} fields"
    )
    return output
