"""Table 1: evaluation dataset summary.

Regenerates the paper's dataset-summary table from the synthetic presets
and places the published numbers alongside.  The check asserts each
generated field matches the published row in the ways the downstream
analysis depends on: sign of the mean, order of magnitude of the spread,
and the bounds.
"""

from __future__ import annotations

import math

from repro.datasets.registry import keys
from repro.datasets.summary import summarize_field
from repro.experiments.base import (
    ExperimentOutput,
    ExperimentParams,
    register_experiment,
)
from repro.reporting.series import Table


def _order_of_magnitude_close(generated: float, published: float, tolerance: float = 1.3) -> bool:
    """Within ~an order of magnitude (both zero also passes)."""
    if published == 0 and generated == 0:
        return True
    if published == 0 or generated == 0:
        # One of them collapsed to zero: accept only tiny absolute values.
        return abs(published) < 1e-12 and abs(generated) < 1e-12
    return abs(math.log10(abs(generated) / abs(published))) <= tolerance


@register_experiment(
    "table1",
    "Evaluation dataset summary (generated vs published)",
    "Table 1",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(exp_id="table1", title="Evaluation Dataset Summary")
    table = Table(
        title="Table 1: dataset fields",
        columns=[
            "dataset", "field", "dims",
            "mean", "paper_mean", "median", "paper_median",
            "max", "paper_max", "min", "paper_min",
            "std", "paper_std",
        ],
    )
    spread_ok = []
    bounds_ok = []
    # Spread validation needs the rare-outlier components (e.g. EXAFEL's
    # ~1e-5-probability bright pixels) to actually appear, so it always
    # samples at least 2**20 elements even when the displayed table uses
    # a smaller quick-run population.
    check_size = max(params.data_size, 1 << 20)
    for key in keys():
        summary = summarize_field(key, seed=params.seed, size=params.data_size)
        preset = summary.preset
        generated = summary.generated
        published = preset.published
        if check_size != params.data_size:
            generated_check = summarize_field(key, seed=params.seed, size=check_size).generated
        else:
            generated_check = generated
        table.add_row([
            preset.dataset, preset.field,
            "x".join(str(d) for d in preset.dimensions),
            generated.mean, published.mean,
            generated.median, published.median,
            generated.maximum, published.maximum,
            generated.minimum, published.minimum,
            generated.std, published.std,
        ])
        spread_ok.append(_order_of_magnitude_close(generated_check.std, published.std))
        bounds_ok.append(
            generated_check.maximum <= published.maximum + abs(published.maximum) * 1e-6
            and generated_check.minimum >= published.minimum - abs(published.minimum) * 1e-6
        )
    table.notes.append(
        "published EXAFEL mean/std are mutually inconsistent for positive "
        "data (std^2 > mean*max); the generator matches the median/std "
        "structure (see EXPERIMENTS.md)"
    )
    output.tables.append(table)
    output.check("every_field_std_within_order_of_magnitude", all(spread_ok))
    output.check("every_field_within_published_bounds", all(bounds_ok))
    output.findings.append(
        f"{sum(spread_ok)}/{len(spread_ok)} fields match published spread "
        "within ~1 order of magnitude"
    )
    return output
