"""Future-work extension: 8/16/64-bit posit fault-injection campaigns.

The paper's Section 6 calls for "fault injection campaigns on 8, 16 and
64 bit posits".  This experiment runs the same campaign on every standard
posit width (and the matching IEEE widths for contrast) over a field
whose values fit even posit8's range, and compares worst-bit mean
relative error and catastrophic rates across widths.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.aggregate import aggregate_by_bit, catastrophic_fraction
from repro.experiments._campaigns import field_campaign
from repro.experiments.base import ExperimentOutput, ExperimentParams, register_experiment
from repro.formats import resolve
from repro.reporting.series import Table

#: Values in (0, 1): representable across every width without saturation.
FIELD = "cesm/cloud"
#: Any registry spec works here — widths come from the registry, so
#: sweeping e.g. ("posit16es1", "binary(6,9)") needs no other change.
PAIRS = (
    ("posit8", None),
    ("posit16", "ieee16"),
    ("posit32", "ieee32"),
    ("posit64", "ieee64"),
)


@register_experiment(
    "ext-sizes",
    "Campaigns on 8/16/64-bit posits (future-work extension)",
    "Section 6 (future work)",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(
        exp_id="ext-sizes", title="Fault injection across posit/IEEE widths"
    )
    table = Table(
        title="Worst-bit mean relative error and catastrophic rate per width",
        columns=["target", "bits", "worst_mre", "worst_bit", "catastrophic", "sign_bit_mre"],
    )
    worst = {}
    for posit_name, ieee_name in PAIRS:
        for name in (posit_name, ieee_name):
            if name is None:
                continue
            nbits = resolve(name).nbits
            result = field_campaign(FIELD, name, params)
            agg = aggregate_by_bit(result.records, nbits)
            # Inf-aware mean: an ieee64 exponent-MSB flip scales by up to
            # 2**1024, which overflows float64 relative error — the
            # finite-only mean would silently drop exactly the worst
            # trials this comparison is about.
            curve = agg.mean_rel_err_incl_inf
            worst_value = float(np.nanmax(curve))
            worst_bit = int(np.nanargmax(curve))
            worst[name] = worst_value
            table.add_row([
                name, nbits, worst_value, worst_bit,
                catastrophic_fraction(result.records),
                float(curve[nbits - 1]),
            ])
    output.tables.append(table)

    output.check(
        "posit32_beats_ieee32",
        worst["posit32"] < worst["ieee32"],
    )
    output.check(
        "posit64_beats_ieee64",
        worst["posit64"] < worst["ieee64"],
    )
    # At 16 bits the picture inverts on sub-one-heavy data: binary16's
    # 5-bit exponent caps any flip at x2**16, while a posit16 regime flip
    # can rescale by far more.  The paper's resiliency claim is about
    # 32-bit formats; this extension records that it does NOT generalize
    # downward unconditionally.
    output.check(
        "ieee16_flip_damage_capped_by_exponent_width",
        worst["ieee16"] <= 2.0**16,
    )
    if worst["posit16"] >= worst["ieee16"]:
        output.findings.append(
            "posit16 shows a LARGER worst-bit error than ieee16 on this "
            "sub-one-heavy field: the regime's dynamic range exceeds "
            "binary16's exponent range, so the paper's 32-bit advantage "
            "does not automatically extend to half precision"
        )
    # Wider IEEE formats have wider exponents, so their worst flip grows
    # with width; posit worst flips stay regime-bounded.
    output.check(
        "ieee_worst_grows_with_width",
        worst["ieee16"] < worst["ieee32"] < worst["ieee64"],
    )
    output.findings.append(
        "worst-bit MRE: "
        + ", ".join(f"{name}={value:.2e}" for name, value in sorted(worst.items()))
    )
    return output
