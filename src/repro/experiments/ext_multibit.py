"""Future-work extension: multi-bit flip analysis.

Section 6 asks for multi-bit flips.  Two models from the fault-spec
grammar (:mod:`repro.inject.faultspec`) are run over a mid-range field,
for posit32 and ieee32:

* ``adjacent(2)`` — adjacent double flips (the dominant physical
  multi-bit DRAM upset), one shard per starting bit;
* ``random(2)`` — independent random double flips, uniform pairs of
  distinct bits per trial.

Both are ordinary campaigns with a non-default ``fault`` config — the
same code path ``campaign run --fault`` drives — so the experiment
shares the encode-once batched pipeline and the per-bit seed discipline
with every other campaign.

Checks: posit keeps its upper-bit advantage under double flips, and for
both systems a double flip is at least as damaging (in worst-bit MRE) as
the single flip of its worse constituent bit is alone.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.aggregate import aggregate_by_bit
from repro.experiments._campaigns import field_campaign
from repro.experiments.base import ExperimentOutput, ExperimentParams, register_experiment
from repro.reporting.series import Figure, Series, Table

FIELD = "hurricane/uf30"
NBITS = 32


@register_experiment(
    "ext-multibit",
    "Multi-bit flip campaigns (future-work extension)",
    "Section 6 (future work)",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(
        exp_id="ext-multibit", title="Adjacent and random double-bit flips"
    )

    figure = Figure(
        title="Adjacent double-flip mean relative error by starting bit",
        x_label="starting bit",
        y_label="mean relative error",
    )
    curves = {}
    for target_name in ("ieee32", "posit32"):
        result = field_campaign(FIELD, target_name, params, fault="adjacent(2)")
        curve = aggregate_by_bit(result.records, NBITS).mean_rel_err
        curves[target_name] = curve
        figure.add(Series(target_name, np.arange(NBITS), curve))
    output.figures.append(figure)

    upper = slice(NBITS - 10, NBITS - 1)
    ieee_upper = np.nanmax(curves["ieee32"][upper])
    posit_upper = np.nanmax(curves["posit32"][upper])
    output.check(
        "posit_upper_bit_advantage_survives_double_flips",
        bool(posit_upper < ieee_upper / 1e6),
    )

    # Compare against the single-flip campaign (memoized from fig10 pool).
    single_ieee = field_campaign(FIELD, "ieee32", params)
    single_curve = aggregate_by_bit(single_ieee.records, NBITS).mean_rel_err
    output.check(
        "double_flip_at_least_as_damaging_as_single",
        bool(np.nanmax(curves["ieee32"]) >= np.nanmax(single_curve) * 0.5),
    )

    # Random double flips: the model ignores its anchor bit, so the
    # whole campaign is one large uniform-pair sample.
    table = Table(
        title="Independent random double flips (whole-word)",
        columns=["target", "mean_rel_err", "median_rel_err", "catastrophic"],
    )
    for target_name in ("ieee32", "posit32"):
        records = field_campaign(FIELD, target_name, params, fault="random(2)").records
        rel = records.rel_err[np.isfinite(records.rel_err)]
        table.add_row([
            target_name,
            float(np.mean(rel)) if rel.size else float("nan"),
            float(np.median(rel)) if rel.size else float("nan"),
            float(np.mean(records.non_finite)),
        ])
    output.tables.append(table)
    posit_med = table.rows[1][2]
    ieee_med = table.rows[0][2]
    output.check(
        "posit_median_double_flip_error_not_worse",
        bool(posit_med <= ieee_med * 10),
    )
    output.findings.append(
        f"adjacent double-flip worst upper-bit MRE: ieee {ieee_upper:.2e}, "
        f"posit {posit_upper:.2e}"
    )
    return output
