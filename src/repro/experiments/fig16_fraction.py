"""Figure 16: relative error of fraction-bit flips.

Section 5.5: with the regime size fixed at k = 1 (the most plentiful
group, keeping the fraction width constant at 27 bits), the per-bit
relative error of fraction flips doubles per bit toward the MSB — a
straight line on the paper's log-scale plot — and the trend does not
depend on regime size (regime sizes 1-6 show the same slope).

Data: HACC and Hurricane fields, as the paper uses.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stratify import group_by_regime_size
from repro.experiments._campaigns import field_campaign, merged_records
from repro.experiments.base import ExperimentOutput, ExperimentParams, register_experiment
from repro.posit import PositField
from repro.reporting.series import Figure, Series

POOL_FIELDS = ("hacc/vx", "hacc/vy", "hurricane/uf30", "hurricane/vf30")
NBITS = 32


def fraction_bit_range(k: int) -> tuple[int, int]:
    """Bit positions [low, high] of the fraction for regime size k.

    Layout: sign 31, regime k+1 bits (body + terminator), exponent 2,
    fraction occupies bits 0 .. 32-1-(k+1)-2-1.
    """
    high = NBITS - 1 - (k + 1) - 2 - 1
    return 0, high


def _log2_slope(bits: np.ndarray, values: np.ndarray) -> float:
    mask = np.isfinite(values) & (values > 0)
    if np.sum(mask) < 4:
        return float("nan")
    return float(np.polyfit(bits[mask], np.log2(values[mask]), 1)[0])


@register_experiment(
    "fig16",
    "Relative error of fraction-bit flips (k = 1 posits, HACC + Hurricane)",
    "Figure 16",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(
        exp_id="fig16", title="Fraction-bit relative error (log-scale doubling trend)"
    )
    results = [field_campaign(key, "posit32", params) for key in POOL_FIELDS]
    records = merged_records(results)
    fraction_trials = records.for_field(int(PositField.FRACTION))
    groups = group_by_regime_size(fraction_trials, NBITS, max_k=6, min_trials=64)

    figure = Figure(
        title="Fig. 16: mean relative error per fraction bit",
        x_label="bit position",
        y_label="mean relative error",
    )
    slopes = {}
    for group in groups:
        low, high = fraction_bit_range(group.k)
        bits = np.arange(low, high + 1)
        curve = group.aggregate.mean_rel_err[low : high + 1]
        figure.add(Series(f"k={group.k}", bits, curve))
        slopes[group.k] = _log2_slope(bits, curve)
    output.figures.append(figure)

    k1_slope = slopes.get(1, float("nan"))
    output.check("k1_group_present", 1 in slopes)
    # Doubling per bit => slope of log2(error) vs bit ~= 1.
    output.check(
        "error_doubles_per_fraction_bit",
        bool(np.isfinite(k1_slope) and 0.8 <= k1_slope <= 1.2),
    )
    other = [s for k, s in slopes.items() if k != 1 and np.isfinite(s)]
    output.check(
        "slope_independent_of_regime_size",
        bool(other) and all(0.7 <= s <= 1.3 for s in other),
    )
    output.findings.append(
        "log2 slope per fraction bit: "
        + ", ".join(f"k={k}: {s:.2f}" for k, s in sorted(slopes.items()))
    )
    return output
