"""Extension: the paper's Section 4.1.2 methodology check.

The paper writes: "Our conversion accuracy test shows that calling
p32_to_ui32(posit_32t) and ui32_to_p32(uint32_t) performs rounding, and
introduces a relative error of 1e-5 to the experimental results.  We use
the unsigned integer struct member instead of the conversion function to
evade this."

This experiment reproduces that test with the SoftPosit-compatible shim:
transporting a posit through the *numeric* uint32 conversions rounds the
value to an integer (relative error ~2**-17 ~ 1e-5 for the 1e4..1e6
magnitudes the paper's HACC/Nyx data carries), while the raw ``v`` member
is bit-exact.  Checks encode both halves of the paper's observation.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.registry import get as get_preset
from repro.experiments.base import ExperimentOutput, ExperimentParams, register_experiment
from repro.posit.softposit_compat import (
    castUI32,
    convertFloatToP32,
    convertP32ToFloat,
    p32_to_ui32,
    ui32_to_p32,
)
from repro.reporting.series import Table

FIELD = "nyx/temperature"  # magnitudes ~1e4: the paper's error regime


@register_experiment(
    "ext-methodology",
    "SoftPosit numeric-conversion rounding (Section 4.1.2)",
    "Section 4.1.2",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(
        exp_id="ext-methodology",
        title="Why the paper flips the raw struct member, reproduced",
    )
    data = get_preset(FIELD).generate(
        seed=params.seed, size=min(params.data_size, 4096)
    ).astype(np.float64)

    numeric_errors = []
    raw_errors = []
    for value in data:
        posit = convertFloatToP32(float(value))
        stored = convertP32ToFloat(posit)
        if stored <= 0:
            continue
        # Paper's rejected transport: posit -> numeric uint32 -> posit.
        numeric_roundtrip = convertP32ToFloat(ui32_to_p32(p32_to_ui32(posit)))
        numeric_errors.append(abs(stored - numeric_roundtrip) / abs(stored))
        # Paper's chosen transport: the raw bit member.
        raw_roundtrip = convertP32ToFloat(
            type(posit)(castUI32(posit))
        )
        raw_errors.append(abs(stored - raw_roundtrip) / abs(stored))

    numeric_errors = np.asarray(numeric_errors)
    raw_errors = np.asarray(raw_errors)

    table = Table(
        title="Relative error of the two bit-transport mechanisms",
        columns=["mechanism", "mean rel err", "max rel err"],
    )
    table.add_row([
        "numeric p32_to_ui32/ui32_to_p32 (paper: ~1e-5)",
        float(np.mean(numeric_errors)), float(np.max(numeric_errors)),
    ])
    table.add_row([
        "raw struct member v (paper's choice)",
        float(np.mean(raw_errors)), float(np.max(raw_errors)),
    ])
    output.tables.append(table)

    mean_numeric = float(np.mean(numeric_errors))
    output.check("raw_member_is_bit_exact", bool(np.all(raw_errors == 0.0)))
    output.check(
        "numeric_conversion_introduces_error",
        mean_numeric > 0.0,
    )
    # The paper's order of magnitude: ~1e-5 for its dataset magnitudes.
    output.check(
        "numeric_error_near_1e-5",
        1e-7 < mean_numeric < 1e-3,
    )
    output.findings.append(
        f"numeric-conversion transport mean relative error "
        f"{mean_numeric:.2e} on {FIELD} (paper reports ~1e-5); raw-member "
        f"transport exact on all {raw_errors.size} values"
    )
    return output
