"""Extension: protection-scheme evaluation (the paper's design payoff).

The paper's stated purpose is to "inform hardware design for future
fault prone systems"; this experiment turns its campaign into that
design guidance.  Over a mixed field pool it computes, for posit32 and
ieee32:

* the coverage/overhead frontier of data-ranked selective TMR;
* how many protected bits each system needs to eliminate 95% of serious
  SDCs (relative error > 1);
* how the naive protect-the-MSBs heuristic compares — IEEE's dangerous
  bits are static (exponent + sign), while the posit regime moves with
  the data, so MSB protection behaves differently between the systems;
* how the frontier shifts under a multi-bit fault model
  (``adjacent(2)`` from the fault-spec grammar), replayed through the
  support-aware evaluator in :mod:`repro.analysis.faultsweep`.
"""

from __future__ import annotations

import numpy as np

from repro.experiments._campaigns import field_campaign, merged_records
from repro.experiments.base import ExperimentOutput, ExperimentParams, register_experiment
from repro.protect import (
    FullDuplication,
    FullTMR,
    NoProtection,
    SelectiveParity,
    bits_needed_for_reduction,
    evaluate_scheme,
    msb_tmr_frontier,
    ranked_bit_positions,
    tmr_frontier,
)
from repro.reporting.series import Figure, Series, Table

POOL_FIELDS = ("nyx/temperature", "hacc/vx", "cesm/cloud", "hurricane/uf30")
NBITS = 32
TARGET_REDUCTION = 0.95


@register_experiment(
    "ext-protect",
    "Selective protection design study (extension)",
    "Section 1 motivation / Section 2 related work",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(
        exp_id="ext-protect", title="How many bits must each number system protect?"
    )
    frontier_figure = Figure(
        title="Residual serious-SDC fraction vs protected bit count (ranked TMR)",
        x_label="protected bits",
        y_label="residual serious fraction",
    )
    table = Table(
        title=f"Protection requirements ({int(TARGET_REDUCTION * 100)}% serious-SDC reduction)",
        columns=[
            "target", "baseline_serious", "bits_needed_ranked",
            "bits_needed_msb", "ranked_bits",
        ],
    )
    needed = {}
    for target_name in ("ieee32", "posit32"):
        records = merged_records(
            [field_campaign(key, target_name, params) for key in POOL_FIELDS]
        )
        frontier = tmr_frontier(records, NBITS, max_protected=16)
        frontier_figure.add(
            Series(
                target_name,
                np.arange(len(frontier)),
                np.array([r.residual_serious_fraction for r in frontier]),
            )
        )
        ranked_needed = bits_needed_for_reduction(records, NBITS, TARGET_REDUCTION)
        msb = msb_tmr_frontier(records, NBITS)
        msb_needed = next(
            (k for k, r in enumerate(msb) if r.serious_reduction >= TARGET_REDUCTION),
            NBITS,
        )
        ranked = ranked_bit_positions(records, NBITS)[:ranked_needed]
        needed[target_name] = {"ranked": ranked_needed, "msb": msb_needed,
                               "records": records, "frontier": frontier}
        table.add_row([
            target_name,
            frontier[0].baseline_serious_fraction,
            ranked_needed,
            msb_needed,
            ",".join(map(str, sorted(ranked, reverse=True))),
        ])
    output.figures.append(frontier_figure)
    output.tables.append(table)

    # -- sanity-of-model checks --------------------------------------------
    for target_name in ("ieee32", "posit32"):
        records = needed[target_name]["records"]
        full = evaluate_scheme(records, FullTMR(), NBITS)
        output.check(
            f"{target_name}_full_tmr_eliminates_everything",
            full.residual_serious_fraction == 0.0
            and full.residual_catastrophic_fraction == 0.0,
        )
        duplication = evaluate_scheme(records, FullDuplication(), NBITS)
        output.check(
            f"{target_name}_duplication_detects_everything",
            duplication.residual_serious_fraction == 0.0,
        )
        nothing = evaluate_scheme(records, NoProtection(), NBITS)
        output.check(
            f"{target_name}_no_protection_changes_nothing",
            nothing.residual_serious_fraction == nothing.baseline_serious_fraction,
        )
        frontier = needed[target_name]["frontier"]
        residuals = [r.residual_serious_fraction for r in frontier]
        output.check(
            f"{target_name}_frontier_monotone_nonincreasing",
            all(a >= b - 1e-12 for a, b in zip(residuals, residuals[1:])),
        )

    # IEEE's serious bits are the static exponent+sign band, so the MSB
    # heuristic should match the ranked design for IEEE...
    output.check(
        "ieee_msb_heuristic_is_near_optimal",
        needed["ieee32"]["msb"] <= needed["ieee32"]["ranked"] + 2,
    )
    # ...while posits' data-dependent regime makes some protection
    # placement matter; record the comparison either way.
    output.findings.append(
        "bits needed for 95% serious-SDC reduction — "
        + ", ".join(
            f"{name}: ranked {info['ranked']}, MSB-heuristic {info['msb']}"
            for name, info in needed.items()
        )
    )
    # Parity on the same ranked set detects (and thus recovers) the same
    # trials at 1-bit overhead; confirm the model agrees.
    for target_name in ("ieee32", "posit32"):
        records = needed[target_name]["records"]
        ranked = ranked_bit_positions(records, NBITS)[: needed[target_name]["ranked"]]
        parity = evaluate_scheme(
            records, SelectiveParity(tuple(ranked)), NBITS
        )
        output.check(
            f"{target_name}_parity_matches_tmr_coverage",
            parity.serious_reduction >= TARGET_REDUCTION,
        )
        output.check(
            f"{target_name}_parity_overhead_is_one_bit",
            parity.overhead_bits == 1,
        )

    # -- the same design question under a multi-bit fault model -------------
    from repro.analysis.faultsweep import fault_frontier

    multibit_table = Table(
        title="Protection under adjacent(2) double flips (support-aware replay)",
        columns=[
            "target", "baseline_serious", "bits_needed_ranked",
            "duplication_reduction", "parity_reduction",
        ],
    )
    for target_name in ("ieee32", "posit32"):
        records = field_campaign(
            POOL_FIELDS[0], target_name, params, fault="adjacent(2)"
        ).records
        cell = fault_frontier(
            records, target_name, NBITS, "adjacent(2)", max_protected=NBITS
        )
        multibit_table.add_row([
            target_name,
            cell.tmr[0].baseline_serious_fraction,
            cell.bits_needed_for_reduction(TARGET_REDUCTION),
            cell.duplication.serious_reduction,
            cell.parity.serious_reduction,
        ])
        # Duplication compares whole words, so any flip pattern is
        # detected regardless of the model.
        output.check(
            f"{target_name}_duplication_survives_double_flips",
            cell.duplication.residual_serious_fraction == 0.0,
        )
        # Parity cancels on even covered flip counts: under adjacent(2)
        # it can never guarantee more than duplication does.
        output.check(
            f"{target_name}_parity_not_above_duplication_under_double_flips",
            cell.parity.serious_reduction <= cell.duplication.serious_reduction + 1e-12,
        )
    output.tables.append(multibit_table)
    return output
