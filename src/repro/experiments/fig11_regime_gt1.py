"""Figure 11: error per bit in posits with magnitude greater than one.

Section 5.4.1: restricting to |p| > 1 and grouping trials by regime size
k isolates the regime trends — a spike at the terminating bit R_k
(flipping it expands the regime into former exponent/fraction bits) and
a consistent, non-exploding error across the body bits R_0..R_{k-1}.

Data: a magnitude-rich pool (Nyx temperature + HACC + Hurricane pressure)
so every regime size 1..6 is populated.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stratify import (
    group_by_regime_size,
    magnitude_split,
    rk_spike_ratio,
    terminating_bit_position,
)
from repro.experiments._campaigns import field_campaign, merged_records
from repro.experiments.base import ExperimentOutput, ExperimentParams, register_experiment
from repro.reporting.series import Figure, Series

POOL_FIELDS = ("nyx/temperature", "hacc/vx", "hurricane/pf48")
NBITS = 32
MAX_K = 6


@register_experiment(
    "fig11",
    "Average relative error in posits with magnitude > 1, by regime size",
    "Figure 11",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(
        exp_id="fig11",
        title="Per-bit relative error of |p| > 1 posits, stratified by regime size",
    )
    results = [field_campaign(key, "posit32", params) for key in POOL_FIELDS]
    records = merged_records(results)
    greater, _ = magnitude_split(records)
    groups = group_by_regime_size(greater, NBITS, max_k=MAX_K, min_trials=64)

    figure = Figure(
        title="Fig. 11: mean relative error per bit, |p| > 1",
        x_label="bit position",
        y_label="mean relative error",
    )
    bits = np.arange(NBITS)
    spike_checks = []
    body_flat_checks = []
    for group in groups:
        curve = group.aggregate.mean_rel_err
        figure.add(Series(f"k={group.k}", bits, curve))
        if group.k < 2:
            # k = 1 has no body bits before R_k; only the spike applies.
            ratio = rk_spike_ratio(group, NBITS)
            continue
        ratio = rk_spike_ratio(group, NBITS)
        if np.isfinite(ratio):
            spike_checks.append(ratio > 3.0)
        # Body-bit consistency: max/min of body-bit errors within ~30x of
        # each other (the paper: "consistent error across regime bits").
        body_bits = [NBITS - 2 - j for j in range(group.k)]
        body = curve[body_bits]
        body = body[np.isfinite(body) & (body > 0)]
        if body.size >= 2:
            body_flat_checks.append(float(np.max(body) / np.min(body)) < 30.0)
        rk = terminating_bit_position(group.k, NBITS)
        output.findings.append(
            f"k={group.k}: R_k at bit {rk}, spike ratio {ratio:.1f}x over "
            f"body bits ({group.trial_count} trials)"
        )
    output.figures.append(figure)
    output.check("groups_cover_multiple_regime_sizes", len(groups) >= 3)
    output.check("rk_spike_present_in_every_group", bool(spike_checks) and all(spike_checks))
    output.check(
        "body_bit_error_consistent_within_group",
        bool(body_flat_checks) and all(body_flat_checks),
    )
    return output
