"""Extension: power-of-two pre-scaling as a software mitigation.

Posits are most accurate *and* most flip-resilient near magnitude 1
(small regimes, short dangerous band).  Scaling a field by a power of two
so its median magnitude lands near 1 is free (exact multiply, exact
inverse) — this experiment measures how much resiliency it buys:

* the regime-size population compresses toward k = 1;
* serious-SDC rates and worst-bit error drop for posit storage;
* IEEE storage is unaffected in value terms (its exponent just shifts),
  providing the control.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.aggregate import aggregate_by_bit, sdc_threshold_fraction
from repro.analysis.population import regime_population
from repro.datasets.registry import get as get_preset
from repro.datasets.transforms import unit_median_scale
from repro.experiments.base import ExperimentOutput, ExperimentParams, register_experiment
from repro.inject.campaign import CampaignConfig, run_campaign
from repro.posit.config import POSIT32
from repro.reporting.series import Table

FIELDS = ("nyx/temperature", "hacc/vx", "hurricane/precipf48")
NBITS = 32


@register_experiment(
    "ext-scaling",
    "Power-of-two pre-scaling as a resiliency mitigation (extension)",
    "Section 3.2 (tapered accuracy) applied to resiliency",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(
        exp_id="ext-scaling",
        title="Does rescaling data toward magnitude 1 reduce posit SDC vulnerability?",
    )
    table = Table(
        title="Raw vs scaled posit32 campaigns",
        columns=[
            "field", "scale 2^e",
            "mean k raw", "mean k scaled",
            "serious raw", "serious scaled",
            "worst MRE raw", "worst MRE scaled",
        ],
    )
    improved_serious = []
    compressed_regimes = []
    config = CampaignConfig(trials_per_bit=params.trials_per_bit, seed=params.seed)
    for field_key in FIELDS:
        data = get_preset(field_key).generate(seed=params.seed, size=params.data_size)
        scale = unit_median_scale(data)
        scaled = scale.apply(data)

        raw_result = run_campaign(data, "posit32", config, label=field_key, jobs=params.jobs)
        scaled_result = run_campaign(
            scaled, "posit32", config, label=f"{field_key} scaled", jobs=params.jobs
        )

        raw_population = regime_population(data, POSIT32)
        scaled_population = regime_population(scaled, POSIT32)
        raw_mean_k = float(
            np.sum(raw_population.sizes * raw_population.counts) / max(raw_population.total, 1)
        )
        scaled_mean_k = float(
            np.sum(scaled_population.sizes * scaled_population.counts)
            / max(scaled_population.total, 1)
        )

        raw_serious = sdc_threshold_fraction(raw_result.records, 1.0)
        scaled_serious = sdc_threshold_fraction(scaled_result.records, 1.0)
        raw_worst = float(np.nanmax(aggregate_by_bit(raw_result.records, NBITS).mean_rel_err))
        scaled_worst = float(
            np.nanmax(aggregate_by_bit(scaled_result.records, NBITS).mean_rel_err)
        )
        table.add_row([
            field_key, scale.exponent,
            raw_mean_k, scaled_mean_k,
            raw_serious, scaled_serious,
            raw_worst, scaled_worst,
        ])
        compressed_regimes.append(scaled_mean_k <= raw_mean_k + 0.05)
        improved_serious.append(
            (field_key, raw_mean_k, raw_serious, scaled_serious, raw_worst, scaled_worst)
        )
        output.findings.append(
            f"{field_key}: scale 2^{scale.exponent}, mean regime size "
            f"{raw_mean_k:.2f} -> {scaled_mean_k:.2f}, serious-SDC rate "
            f"{raw_serious:.3f} -> {scaled_serious:.3f}"
        )
    output.tables.append(table)
    output.check("scaling_compresses_regimes", all(compressed_regimes))
    # What the data supports: extremely skewed fields (mean regime size
    # >= 5, e.g. precipitation at ~1e-8..1e-3) are rescued outright —
    # both the serious-SDC rate and the worst-bit error collapse.  Fields
    # that end up *straddling* 1 keep a similar serious rate, and their
    # worst case concentrates into the k=1 regime-inversion flip of the
    # sub-one half — scaling relocates the danger rather than abolishing
    # it.  The robust guarantees: regimes compress, and the serious rate
    # never blows up.
    rescued = [
        (raw_s, scaled_s, raw_w, scaled_w)
        for _, k, raw_s, scaled_s, raw_w, scaled_w in improved_serious
        if k >= 5.0
    ]
    output.check(
        "scaling_rescues_extremely_skewed_fields",
        bool(rescued)
        and all(
            scaled_s < 0.5 * raw_s and scaled_w < raw_w / 1e6
            for raw_s, scaled_s, raw_w, scaled_w in rescued
        ),
    )
    output.check(
        "scaling_never_blows_up_sdc_rate",
        all(
            scaled_s <= raw_s * 1.5 + 0.02
            for _, _, raw_s, scaled_s, _, _ in improved_serious
        ),
    )
    output.findings.append(
        "scaling toward magnitude 1 relocates rather than removes the "
        "worst case for fields that straddle 1: their sub-one half "
        "becomes k=1, whose sole-regime-bit flip (the Section 5.4.2 "
        "inversion) jumps upward by many orders"
    )

    # The transform itself is exact (power-of-two).
    data = get_preset(FIELDS[0]).generate(seed=params.seed, size=1 << 10)
    scale = unit_median_scale(data)
    restored = scale.undo(scale.apply(data))
    output.check("power_of_two_scaling_is_exact", bool(np.array_equal(restored, data.astype(np.float64))))
    return output
