"""Worked numeric examples: Figures 6, 9, 12, 13, 15, 19, 21.

The paper explains each posit effect with a single concrete number; this
experiment reproduces every one of those micro-demonstrations and checks
the arithmetic it illustrates.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.edgecases import FlipEvent, classify_flip, expansion_growth
from repro.analysis.predict import sign_flip_value
from repro.experiments.base import ExperimentOutput, ExperimentParams, register_experiment
from repro.ieee import BINARY32, flip_float_bit, float_to_bits
from repro.ieee.fields import layout_string as ieee_layout
from repro.posit import POSIT32, decode, decompose, encode, layout_string, negate
from repro.reporting.series import Table


def _posit_bits(value: float) -> np.uint32:
    return np.uint32(encode(np.float64(value), POSIT32))


def _decode_one(pattern) -> float:
    return float(decode(np.uint64(pattern), POSIT32))


@register_experiment(
    "worked",
    "Worked numeric examples (Figs. 6, 9, 12, 13, 15, 19, 21)",
    "Figures 6, 9, 12, 13, 15, 19, 21",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(exp_id="worked", title="Worked numeric examples")
    table = Table(
        title="Worked examples",
        columns=["figure", "description", "before", "after", "quantity"],
    )

    # ---- Fig. 6: field sizes vary with magnitude --------------------------
    small = _posit_bits(1.141)
    large = _posit_bits(186250.0)
    small_fields = decompose(np.array([small], dtype=np.uint64), POSIT32)
    large_fields = decompose(np.array([large], dtype=np.uint64), POSIT32)
    table.add_row([
        "6", "1.141 layout", layout_string(int(small), POSIT32), "",
        f"{int(small_fields.fraction_bits[0])} fraction bits",
    ])
    table.add_row([
        "6", "186250 layout", layout_string(int(large), POSIT32), "",
        f"{int(large_fields.fraction_bits[0])} fraction bits",
    ])
    output.check(
        "fig6_larger_magnitude_longer_regime",
        int(large_fields.regime_len[0]) > int(small_fields.regime_len[0]),
    )
    output.check(
        "fig6_larger_magnitude_fewer_fraction_bits",
        int(large_fields.fraction_bits[0]) < int(small_fields.fraction_bits[0]),
    )
    output.check("fig6_roundtrip_exact", _decode_one(large) == 186250.0)

    # ---- Fig. 9: the XOR injection itself ---------------------------------
    value = np.float32(186.25)
    bits_before = int(float_to_bits(value, BINARY32))
    faulty = float(flip_float_bit(value, 20, BINARY32))
    bits_after = int(float_to_bits(np.float32(faulty), BINARY32))
    table.add_row([
        "9", "XOR bit 20 of 186.25",
        ieee_layout(bits_before, BINARY32), ieee_layout(bits_after, BINARY32),
        f"faulty={faulty}",
    ])
    output.check("fig9_xor_flips_exactly_one_bit", bits_before ^ bits_after == 1 << 20)

    # ---- Fig. 12: regime expansion at R_k ---------------------------------
    # A |p| > 1 posit whose exponent/fraction MSBs continue the run once
    # R_k flips: regime 110, e = 11, fraction 111... -> flip of R_k (the 0)
    # absorbs many bits.  Value: r = 1, e = 3, f ~ 0.96: ~= 250.
    pattern = _posit_bits(250.0)
    event = classify_flip(np.array([pattern], dtype=np.uint64), 28, POSIT32)[0]
    growth = int(expansion_growth(np.array([pattern], dtype=np.uint64), 28, POSIT32)[0])
    before_value = _decode_one(pattern)
    after_value = _decode_one(int(pattern) ^ (1 << 28))
    table.add_row([
        "12", "flip R_k of ~250",
        layout_string(int(pattern), POSIT32),
        layout_string(int(pattern) ^ (1 << 28), POSIT32),
        f"x{after_value / before_value:.3g} (regime +{growth} bits)",
    ])
    output.check("fig12_rk_flip_expands_regime", event == FlipEvent.REGIME_EXPANSION and growth >= 2)
    output.check(
        "fig12_magnitude_scales_by_useed_per_absorbed_bit",
        after_value / before_value >= 2.0 ** (4 * (growth - 1)),
    )

    # ---- Fig. 13: R_0 vs R_{k-1} flips cause similar absolute error -------
    big = _posit_bits(2.0**18)  # r = 4, regime 111110 (k = 5)
    original = _decode_one(big)
    r0_flip = _decode_one(int(big) ^ (1 << 30))      # R_0
    rkm1_flip = _decode_one(int(big) ^ (1 << 26))    # R_{k-1}
    err_r0 = abs(original - r0_flip)
    err_rkm1 = abs(original - rkm1_flip)
    table.add_row([
        "13", "R_0 vs R_{k-1} flip of 2^18",
        f"|err R_0| = {err_r0:.4g}", f"|err R_k-1| = {err_rkm1:.4g}",
        f"ratio {err_r0 / err_rkm1:.3f}",
    ])
    output.check(
        "fig13_body_flips_similar_absolute_error",
        0.5 <= err_r0 / err_rkm1 <= 2.0,
    )
    output.check(
        "fig13_body_flips_shrink_magnitude",
        abs(r0_flip) < original and abs(rkm1_flip) < original,
    )

    # ---- Fig. 15: regime expands AND inverts (k = 1, |p| < 1) -------------
    sub = _posit_bits(0.1)  # r = -1: regime 01, k = 1
    event = classify_flip(np.array([sub], dtype=np.uint64), 30, POSIT32)[0]
    before_value = _decode_one(sub)
    after_value = _decode_one(int(sub) ^ (1 << 30))
    table.add_row([
        "15", "flip sole regime bit of 0.1",
        layout_string(int(sub), POSIT32),
        layout_string(int(sub) ^ (1 << 30), POSIT32),
        f"{before_value:.4g} -> {after_value:.4g}",
    ])
    output.check("fig15_flip_inverts_regime", event == FlipEvent.REGIME_INVERSION)
    output.check(
        "fig15_magnitude_jumps_across_one",
        abs(before_value) < 1.0 < abs(after_value),
    )

    # ---- Fig. 19: negation requires the two's complement -------------------
    sample = _posit_bits(13.5)
    negated_pattern = int(negate(np.uint64(sample), POSIT32))
    table.add_row([
        "19", "negate 13.5",
        layout_string(int(sample), POSIT32),
        layout_string(negated_pattern, POSIT32),
        f"value {_decode_one(negated_pattern)}",
    ])
    output.check("fig19_twos_complement_negates", _decode_one(negated_pattern) == -13.5)
    sign_only = int(sample) ^ (1 << 31)
    output.check("fig19_sign_flip_alone_does_not_negate", _decode_one(sign_only) != -13.5)

    # ---- Fig. 21: sign flip rewires the magnitude (Eq. 2 closed form) ----
    predicted = float(sign_flip_value(np.array([sample], dtype=np.uint64), POSIT32)[0])
    actual = _decode_one(sign_only)
    table.add_row([
        "21", "sign flip of 13.5 (Eq. 2 closed form)",
        f"{_decode_one(sample)}", f"{actual}",
        f"predicted {predicted}",
    ])
    output.check("fig21_eq2_closed_form_matches", predicted == actual)
    output.check(
        "fig21_sign_flip_changes_magnitude",
        abs(abs(actual) - 13.5) > 1.0,
    )

    output.tables.append(table)
    return output
