"""Future-work extension: mathematical prediction of posit flip error.

Section 6 asks whether error from posit bit flips can be predicted
analytically.  :mod:`repro.analysis.predict` answers yes — closed forms
per field (sign, exponent, fraction directly; regime via run arithmetic).
This experiment validates the predictor against a measured campaign:
every predicted faulty value must equal the measured one bit-for-bit, and
the per-event error distribution table summarizes which structural events
(expansion, inversion, sign flips ...) carry the risk.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.edgecases import FlipEvent
from repro.analysis.predict import predict_flip
from repro.experiments._campaigns import field_campaign
from repro.experiments.base import ExperimentOutput, ExperimentParams, register_experiment
from repro.ieee import BINARY32
from repro.ieee import predict_flip as ieee_predict_flip
from repro.ieee.bits import flip_float_bit
from repro.posit import POSIT32, encode
from repro.reporting.series import Table

FIELD = "nyx/temperature"
NBITS = 32


@register_experiment(
    "ext-predict",
    "Analytic prediction of flip error (future-work extension)",
    "Section 6 (future work)",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(
        exp_id="ext-predict", title="Closed-form flip-error prediction vs measurement"
    )
    result = field_campaign(FIELD, "posit32", params)
    records = result.records

    # Re-encode the measured originals and predict each trial's flip.
    mismatches = 0
    total = 0
    event_errors: dict[int, list[float]] = {int(event): [] for event in FlipEvent}
    for bit in range(NBITS):
        subset = records.for_bit(bit)
        if not len(subset):
            continue
        patterns = encode(subset.original, POSIT32)
        prediction = predict_flip(patterns, bit, POSIT32)
        measured = subset.faulty
        same = (prediction.faulty == measured) | (
            np.isnan(prediction.faulty) & np.isnan(measured)
        )
        mismatches += int(np.sum(~same))
        total += len(subset)
        for event in FlipEvent:
            sel = prediction.event == int(event)
            values = prediction.relative_error[sel]
            event_errors[int(event)].extend(values[np.isfinite(values)].tolist())

    output.check("posit_prediction_bit_exact", mismatches == 0)
    output.findings.append(
        f"{total - mismatches}/{total} posit trials predicted bit-exactly"
    )

    table = Table(
        title="Relative error by structural flip event (predicted)",
        columns=["event", "trials", "median_rel_err", "max_rel_err"],
    )
    for event in FlipEvent:
        values = np.asarray(event_errors[int(event)])
        table.add_row([
            event.name,
            int(values.size),
            float(np.median(values)) if values.size else float("nan"),
            float(np.max(values)) if values.size else float("nan"),
        ])
    output.tables.append(table)

    expansions = np.asarray(event_errors[int(FlipEvent.REGIME_EXPANSION)])
    fractions = np.asarray(event_errors[int(FlipEvent.FRACTION_CHANGE)])
    output.check(
        "regime_events_riskier_than_fraction_events",
        bool(
            expansions.size
            and fractions.size
            and np.median(expansions) > np.median(fractions)
        ),
    )

    # ---- IEEE analytic model validation over the same field ---------------
    ieee_result = field_campaign(FIELD, "ieee32", params)
    ieee_records = ieee_result.records
    checked = 0
    exact = 0
    for bit in range(NBITS):
        subset = ieee_records.for_bit(bit)
        if not len(subset):
            continue
        values32 = subset.original.astype(np.float32)
        prediction = ieee_predict_flip(values32, bit, BINARY32)
        actual = flip_float_bit(values32, bit, BINARY32).astype(np.float64)
        valid = prediction.valid
        same = np.isclose(prediction.faulty[valid], actual[valid], rtol=1e-7, atol=0.0)
        checked += int(np.sum(valid))
        exact += int(np.sum(same))
    output.check("ieee_analytic_matches_where_valid", checked > 0 and exact == checked)
    output.findings.append(
        f"IEEE analytic model validated on {checked} normal-range trials"
    )
    return output
