"""Shared campaign execution for the experiment modules.

Several figures aggregate the *same* campaign differently (Figs. 10, 11,
14, 16, 18, 20 all consume per-field posit campaigns), so campaign
results are memoized per (field, target, scale) within the process.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.registry import get as get_preset
from repro.experiments.base import ExperimentParams
from repro.inject.campaign import CampaignConfig, CampaignResult, run_campaign

_CACHE: dict[tuple, CampaignResult] = {}


def field_campaign(
    field_key: str,
    target_name: str,
    params: ExperimentParams,
    bits: tuple[int, ...] | None = None,
    fault: str = "single",
) -> CampaignResult:
    """Run (or reuse) a campaign for one dataset field, target, and fault model."""
    config = CampaignConfig(
        trials_per_bit=params.trials_per_bit, bits=bits, seed=params.seed, fault=fault
    )
    cache_key = (
        field_key, target_name, params.data_size, params.trials_per_bit,
        params.seed, bits, config.fault,
    )
    if cache_key in _CACHE:
        return _CACHE[cache_key]
    preset = get_preset(field_key)
    data = preset.generate(seed=params.seed, size=params.data_size)
    # jobs is not part of the cache key: worker count never changes results.
    result = run_campaign(data, target_name, config, label=field_key, jobs=params.jobs)
    _CACHE[cache_key] = result
    return result


def clear_cache() -> None:
    """Drop memoized campaigns (tests use this for isolation)."""
    _CACHE.clear()


def merged_records(results: list[CampaignResult]):
    """Concatenate the records of several campaigns (multi-field pools)."""
    from repro.inject.results import TrialRecords

    return TrialRecords.concatenate([result.records for result in results])


def mean_rel_series(result: CampaignResult, nbits: int) -> np.ndarray:
    """Mean (finite) relative error per bit — the Fig. 10 y-values."""
    from repro.analysis.aggregate import aggregate_by_bit

    return aggregate_by_bit(result.records, nbits).mean_rel_err
