"""Figure 7: posit fractional accuracy per exponent value.

The background figure showing *why* posits behave differently: decimal
accuracy peaks for values near 1 (small regime, many fraction bits) and
decays outward, whereas IEEE accuracy is flat across its normal range.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.accuracy import accuracy_profile, posit_decimal_accuracy
from repro.experiments.base import ExperimentOutput, ExperimentParams, register_experiment
from repro.ieee import BINARY32
from repro.posit import POSIT32


@register_experiment(
    "fig07",
    "Posit fractional accuracy per exponent value",
    "Figure 7",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(
        exp_id="fig07", title="Decimal accuracy vs binary exponent (posit32 vs float32)"
    )
    figure = accuracy_profile(POSIT32, BINARY32, h_range=(-64, 64))
    output.figures.append(figure)

    posit_curve = figure.get("posit32").y
    ieee_curve = figure.get("binary32").y
    hs = figure.get("posit32").x

    # The peak is a plateau over one regime window (h in [-useed, useed)),
    # so check exponent 0 attains the global maximum rather than being
    # its unique argmax.
    output.check(
        "posit_accuracy_peaks_at_exponent_zero",
        bool(posit_curve[hs == 0][0] == np.max(posit_curve)),
    )
    output.check(
        "posit_beats_ieee_near_one",
        bool(posit_curve[hs == 0][0] > ieee_curve[hs == 0][0]),
    )
    output.check(
        "posit_decays_away_from_one",
        bool(
            posit_curve[hs == 40][0] < posit_curve[hs == 0][0]
            and posit_curve[hs == -40][0] < posit_curve[hs == 0][0]
        ),
    )
    output.check(
        "ieee_flat_over_normal_range",
        bool(np.allclose(ieee_curve, ieee_curve[0])),
    )
    # Monotone decay on each side of the peak (non-strict: plateaus of 4
    # exponents share a regime).
    left = posit_curve[hs <= 0]
    right = posit_curve[hs >= 0]
    output.check(
        "posit_profile_is_a_tent",
        bool(np.all(np.diff(left) >= 0) and np.all(np.diff(right) <= 0)),
    )
    output.findings.append(
        f"posit32 carries {posit_decimal_accuracy(0, POSIT32):.2f} decimal "
        f"digits at exponent 0 vs float32's flat "
        f"{float(ieee_curve[0]):.2f}"
    )
    return output
