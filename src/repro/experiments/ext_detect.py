"""Extension: impact-driven SDC detection over the solver workload.

The paper's related work lists software detection (Di & Cappello) among
the defenses motivating resiliency studies.  This experiment closes that
loop: run the Jacobi workload under single flips at every bit position,
watch the state with the linear-extrapolation detector, and relate
*detection recall* to *application impact* for both number systems.

The expected picture — and the checks — follow from impact-driven
detection's design: it catches exactly the flips big enough to matter.
Posit flips are smaller on average, so raw recall is lower, but the
missed flips are the ones the application absorbs anyway; the meaningful
metric is the damage carried by *undetected* faults, where posits win.
"""

from __future__ import annotations

import numpy as np

from repro.apps.campaign import classify_outcome
from repro.apps.faulty import AppFaultSpec, run_faulty_solve
from repro.apps.stencil import PoissonProblem
from repro.detect.temporal import detection_sweep
from repro.experiments.base import ExperimentOutput, ExperimentParams, register_experiment
from repro.reporting.series import Table

GRID = 12
INJECT_AT = 10
NBITS = 32


@register_experiment(
    "ext-detect",
    "Impact-driven SDC detection vs number system (extension)",
    "Section 2 related work (detection)",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(
        exp_id="ext-detect",
        title="What an impact-driven detector catches, per number system",
    )
    problem = PoissonProblem(grid=GRID)
    center = (GRID // 2) * GRID + GRID // 2

    table = Table(
        title="Detection and undetected damage per bit position band",
        columns=[
            "target", "recall (all bits)", "recall (top 8)",
            "max undetected solution err", "false positives",
        ],
    )
    undetected_damage = {}
    for target in ("ieee32", "posit32"):
        outcomes = detection_sweep(
            problem, target, iteration=INJECT_AT, bits=range(NBITS),
            flat_index=center, theta=8.0,
        )
        recall = float(np.mean([o.detected for o in outcomes]))
        top = [o for o in outcomes if o.bit >= NBITS - 8]
        top_recall = float(np.mean([o.detected for o in top]))
        false_positives = sum(o.false_positives_before for o in outcomes)

        # Classify each undetected flip through the app-campaign outcome
        # taxonomy: the damage metric is the worst finite solution error,
        # and the labels say how the application experienced the miss.
        worst_undetected = 0.0
        labels: dict[str, int] = {}
        for outcome in outcomes:
            if outcome.detected:
                continue
            result = run_faulty_solve(
                problem, target,
                AppFaultSpec(iteration=INJECT_AT, flat_index=center, bit=outcome.bit),
                max_iterations=4000, tolerance=1e-7,
            )
            label = classify_outcome(
                result.converged,
                result.diverged,
                result.iteration_overhead,
                result.solution_error,
                1e-2,
            )
            labels[label] = labels.get(label, 0) + 1
            if np.isfinite(result.solution_error):
                worst_undetected = max(worst_undetected, result.solution_error)
        undetected_damage[target] = worst_undetected
        table.add_row([target, recall, top_recall, worst_undetected, false_positives])
        output.check(f"{target}_no_false_positives", false_positives == 0)
        output.findings.append(
            f"{target}: undetected-flip app outcomes: "
            + ", ".join(f"{k}={v}" for k, v in sorted(labels.items()))
        )
    output.tables.append(table)

    output.check(
        "undetected_faults_cause_negligible_damage",
        all(damage < 1e-2 for damage in undetected_damage.values()),
    )

    # Storage-side view of the same detector, per fault model: replay
    # campaign records (single vs adjacent(2), via the fault grammar)
    # through the impact-driven threshold.  Multi-bit upsets cause
    # bigger value jumps, so detection coverage must not shrink.
    from repro.analysis.faultsweep import temporal_detection_report
    from repro.experiments._campaigns import field_campaign

    coverage = {}
    for fault in ("single", "adjacent(2)"):
        records = field_campaign("hurricane/uf30", "posit32", params, fault=fault).records
        coverage[fault] = temporal_detection_report(records, NBITS).covered_fraction
    output.check(
        "impact_detection_coverage_grows_with_fault_width",
        coverage["adjacent(2)"] >= coverage["single"] - 1e-9,
    )
    output.findings.append(
        "impact-threshold coverage of stored-value faults: "
        + ", ".join(f"{fault}: {cov:.3f}" for fault, cov in coverage.items())
    )
    output.findings.append(
        "impact-driven detection catches the flips that matter; the "
        "worst *undetected* flip moves the final solution by "
        + ", ".join(f"{t}: {d:.1e}" for t, d in undetected_damage.items())
    )
    return output
