"""Figures 19-21: sign-bit flips in posits.

Section 5.7: an IEEE sign flip only negates (absolute error exactly
2|orig|).  A posit sign flip, without the two's complement true negation
requires, also rewires the magnitude because s sits inside the scale of
Eq. 2 — and the damage grows exponentially with regime size (Fig. 20's
box plots).  Posits near 1 (small regimes) are barely affected.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.predict import sign_flip_value
from repro.analysis.signbit import (
    ieee_sign_flip_identity,
    median_growth_factor,
    sign_flip_boxes,
)
from repro.experiments._campaigns import field_campaign, merged_records
from repro.experiments.base import ExperimentOutput, ExperimentParams, register_experiment
from repro.posit import POSIT32, encode, negate, decode
from repro.reporting.series import Table

POOL_FIELDS = ("nyx/temperature", "hacc/vx", "cesm/cloud", "hurricane/pf48")
NBITS = 32
MAX_K = 7


@register_experiment(
    "fig20",
    "Sign-bit flip absolute error vs regime size (box statistics)",
    "Figures 19-21",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(
        exp_id="fig20", title="Posit sign-bit flips: error grows with regime size"
    )
    results = [field_campaign(key, "posit32", params) for key in POOL_FIELDS]
    records = merged_records(results)

    boxes = sign_flip_boxes(records, NBITS, metric="abs_err", max_k=MAX_K)
    table = Table(
        title="Fig. 20: sign-flip absolute error by regime size",
        columns=["regime k", "trials", "min", "q1", "median", "q3", "max"],
    )
    for box in boxes:
        table.add_row([box.group, box.count, box.minimum, box.q1, box.median, box.q3, box.maximum])
    output.tables.append(table)

    growth = median_growth_factor(boxes)
    output.check("boxes_cover_multiple_regime_sizes", len([b for b in boxes if b.count]) >= 3)
    output.check("sign_error_grows_exponentially_with_regime", bool(growth > 4.0))
    output.findings.append(
        f"median sign-flip absolute error grows ~{growth:.1f}x per regime bit"
    )

    # ---- IEEE contrast: err == 2|orig| exactly ---------------------------
    ieee_results = [field_campaign(key, "ieee32", params) for key in POOL_FIELDS]
    ieee_records = merged_records(ieee_results)
    deviation = ieee_sign_flip_identity(ieee_records, NBITS)
    output.check("ieee_sign_flip_error_exactly_2x", bool(deviation == 0.0))

    # ---- Fig. 19: negation requires two's complement ----------------------
    sample = encode(np.array([3.25, -41.0, 0.004, 186250.0]), POSIT32)
    negated = decode(negate(sample, POSIT32), POSIT32)
    original = decode(sample, POSIT32)
    output.check(
        "twos_complement_negates_exactly",
        bool(np.array_equal(negated, -np.asarray(original))),
    )
    sign_flipped = sign_flip_value(sample, POSIT32)
    output.check(
        "sign_flip_is_not_negation",
        bool(np.all(np.asarray(sign_flipped) != -np.asarray(original))),
    )

    # ---- near-one posits barely affected (Section 5.7 close) -------------
    near_one = encode(np.random.default_rng(params.seed).uniform(1.0, 2.0, 512), POSIT32)
    flipped = sign_flip_value(near_one, POSIT32)
    near_rel = np.abs(np.asarray(decode(near_one, POSIT32)) - flipped) / np.abs(
        np.asarray(decode(near_one, POSIT32))
    )
    k1_box = next((b for b in boxes if b.group == 1), None)
    big_boxes = [b for b in boxes if b.group >= 4 and b.count]
    output.check(
        "near_one_sign_flip_error_small",
        bool(np.median(near_rel) < 16.0)
        and (not big_boxes or (k1_box is None or k1_box.median < min(b.median for b in big_boxes))),
    )
    return output
