"""Extension: exhaustive injection vs sampled campaigns.

The paper samples 313 trials per bit "allowing diverse data selection
while not being computationally prohibitive".  Because single flips are
deterministic, the exact expectation over the *whole* population is
computable (``repro.analysis.theory``); this experiment produces that
variance-free ground truth and quantifies how close the paper's sampled
design gets to it — validating the 313-trials choice.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.aggregate import aggregate_by_bit
from repro.analysis.theory import expected_error_by_bit
from repro.datasets.registry import get as get_preset
from repro.experiments._campaigns import field_campaign
from repro.experiments.base import ExperimentOutput, ExperimentParams, register_experiment
from repro.reporting.series import Figure, Series, Table

FIELD = "hurricane/pf48"
NBITS = 32


@register_experiment(
    "ext-theory",
    "Exhaustive injection vs the sampled campaign (extension)",
    "Section 4.1 (trial-count design)",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(
        exp_id="ext-theory",
        title="Exact expected error per bit vs sampled estimates",
    )
    preset = get_preset(FIELD)
    data = preset.generate(seed=params.seed, size=min(params.data_size, 1 << 15))

    comparisons = {}
    figure = Figure(
        title=f"Exact vs sampled mean relative error per bit ({FIELD})",
        x_label="bit",
        y_label="mean relative error",
    )
    for target in ("ieee32", "posit32"):
        exact = expected_error_by_bit(data, target)
        sampled_result = field_campaign(FIELD, target, params)
        sampled = aggregate_by_bit(sampled_result.records, NBITS).mean_rel_err
        figure.add(Series(f"{target} exact", exact.bits, exact.mean_rel_err))
        figure.add(Series(f"{target} sampled", np.arange(NBITS), sampled))
        comparisons[target] = (exact, sampled, sampled_result)
    output.figures.append(figure)

    table = Table(
        title="Sampled-vs-exact deviation per target",
        columns=["target", "bits compared", "median |dev|/exact", "max |dev|/exact"],
    )
    for target, (exact, sampled, sampled_result) in comparisons.items():
        deviations = []
        for b in range(NBITS):
            truth = exact.mean_rel_err[b]
            estimate = sampled[b]
            if not np.isfinite(truth) or truth == 0 or not np.isfinite(estimate):
                continue
            deviations.append(abs(estimate - truth) / truth)
        deviations = np.asarray(deviations)
        table.add_row([
            target, int(deviations.size),
            float(np.median(deviations)), float(np.max(deviations)),
        ])
        # Fraction-bit sampling converges tightly: relative errors there
        # are nearly value-independent, so even modest trial counts land
        # close.  (Upper bits have heavy-tailed per-trial errors; their
        # sampled means legitimately wander, which is exactly what this
        # experiment demonstrates.)
        low_bits = slice(0, 16)
        low_dev = []
        for b in range(16):
            truth = exact.mean_rel_err[b]
            estimate = sampled[b]
            if np.isfinite(truth) and truth > 0 and np.isfinite(estimate):
                low_dev.append(abs(estimate - truth) / truth)
        output.check(
            f"{target}_fraction_bits_converged",
            bool(low_dev) and float(np.median(low_dev)) < 0.5,
        )
        # The exhaustive catastrophic fraction explains the sampled one.
        sampled_cat = float(np.mean(sampled_result.records.non_finite))
        exact_cat = float(np.mean(exact.catastrophic_fraction))
        output.check(
            f"{target}_catastrophic_rates_agree",
            abs(sampled_cat - exact_cat) < 0.05,
        )
    output.tables.append(table)

    # The exact curves must reproduce the Fig. 10 shape with no noise.
    ieee_exact = comparisons["ieee32"][0].mean_rel_err
    posit_exact = comparisons["posit32"][0].mean_rel_err
    output.check(
        "exact_curves_show_fig10_shape",
        bool(np.nanmax(ieee_exact[24:]) > np.nanmax(posit_exact[24:]) * 1e6),
    )
    output.findings.append(
        "exhaustive injection over the full population reproduces the "
        "sampled campaign's structure without sampling noise; 313 trials "
        "per bit tracks fraction-bit expectations closely while upper-bit "
        "means remain heavy-tail-dominated"
    )
    return output
