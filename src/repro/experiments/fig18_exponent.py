"""Figures 17-18: posit exponent bits cause no error spike.

Section 5.6: the posit exponent is a static two bits between regime and
fraction; flipping one multiplies/divides the value by at most 4, so the
smooth doubling trend of the fraction continues straight through the
exponent — unlike IEEE, where the exponent field is a cliff.

The experiment pins regime size k = 1 (exponent at bits 28-27, fraction
at 26..0), fits the fraction trend, extrapolates it over the exponent
bits, and checks the measured exponent error stays on-trend.  The
uppermost-bit contrast of Fig. 17 (IEEE x2**128 vs posit x4) is emitted
as a table.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.predict import max_exponent_flip_error
from repro.analysis.stratify import group_by_regime_size
from repro.experiments._campaigns import field_campaign, merged_records
from repro.experiments.base import ExperimentOutput, ExperimentParams, register_experiment
from repro.ieee import BINARY32, flip_float_bit
from repro.posit import POSIT32
from repro.reporting.series import Figure, Series, Table

POOL_FIELDS = ("hacc/vx", "hacc/vy", "hurricane/uf30", "hurricane/vf30")
NBITS = 32
K = 1
EXP_BITS = (27, 28)   # for k = 1: sign 31, regime 30-29, exponent 28-27
FRACTION_TOP = 26


@register_experiment(
    "fig18",
    "Relative error in the posit exponent vs fraction trend",
    "Figures 17-18",
)
def run(params: ExperimentParams) -> ExperimentOutput:
    output = ExperimentOutput(
        exp_id="fig18", title="Posit exponent bits continue the fraction trend"
    )
    results = [field_campaign(key, "posit32", params) for key in POOL_FIELDS]
    records = merged_records(results)
    k_groups = group_by_regime_size(records, NBITS, max_k=K, min_trials=64)
    k1 = next((group for group in k_groups if group.k == K), None)

    figure = Figure(
        title="Fig. 18: relative error, fraction through exponent (k = 1)",
        x_label="bit position",
        y_label="mean relative error",
    )
    trend_ok = False
    no_spike_ok = False
    if k1 is not None:
        curve = k1.aggregate.mean_rel_err
        bits = np.arange(0, EXP_BITS[-1] + 1)
        figure.add(Series("posit32 k=1", bits, curve[: EXP_BITS[-1] + 1]))

        # Fit the upper-fraction trend and extrapolate over the exponent.
        fit_bits = np.arange(FRACTION_TOP - 11, FRACTION_TOP + 1)
        fit_vals = curve[fit_bits]
        mask = np.isfinite(fit_vals) & (fit_vals > 0)
        slope, intercept = np.polyfit(fit_bits[mask], np.log2(fit_vals[mask]), 1)
        predicted = 2.0 ** (slope * np.array(EXP_BITS) + intercept)
        measured = curve[list(EXP_BITS)]
        ratio = measured / predicted
        trend_ok = bool(np.all(np.isfinite(ratio)) and np.all((ratio > 0.2) & (ratio < 5.0)))
        # No spike: exponent error within the trend, far below a cliff.
        no_spike_ok = bool(np.all(measured < 16.0))
        figure.add(Series("fraction trend extrapolated", np.array(EXP_BITS), predicted))
        output.findings.append(
            f"measured exponent-bit error {measured.tolist()} vs trend "
            f"{predicted.tolist()} (ratio {ratio.tolist()})"
        )
    output.figures.append(figure)
    output.check("k1_group_present", k1 is not None)
    output.check("exponent_error_on_fraction_trend", trend_ok)
    output.check("no_exponent_spike", no_spike_ok)

    # ---- Fig. 17: uppermost exponent-bit flip contrast --------------------
    # 186.25 has biased exponent 134, so its MSB exponent bit is set and
    # the flip divides by 2**128 (flipping a clear MSB would overflow to
    # infinity instead — an even harsher outcome).
    value = np.float32(186.25)
    ieee_faulty = float(flip_float_bit(value, BINARY32.fraction_bits + BINARY32.exponent_bits - 1, BINARY32))
    ieee_factor = abs(ieee_faulty / float(value))
    posit_bound = max_exponent_flip_error(POSIT32) + 1.0
    table = Table(
        title="Fig. 17: uppermost exponent-bit flip magnitude shift",
        columns=["system", "magnitude factor"],
    )
    table.add_row(["ieee32 (bit 30, 2**-128)", ieee_factor])
    table.add_row(["posit32 (exponent MSB, at most 2**2)", posit_bound])
    output.tables.append(table)
    output.check(
        "ieee_uppermost_exponent_flip_shifts_by_2_to_128",
        bool(np.isclose(abs(np.log2(ieee_factor)), 128.0)),
    )
    output.check("posit_exponent_flip_at_most_factor_4", posit_bound == 4.0)
    return output
