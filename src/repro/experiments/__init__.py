"""Experiment harnesses — one registered runner per paper table/figure.

Importing this package registers every experiment; use
:func:`experiment_ids` / :func:`get_experiment` / :func:`run_experiments`
to drive them, or the CLI (``python -m repro experiment <id>``).
"""

from repro.experiments.base import (
    ExperimentOutput,
    ExperimentParams,
    ExperimentSpec,
    experiment_ids,
    get_experiment,
    register_experiment,
    run_experiments,
)

# Importing the experiment modules registers them.
from repro.experiments import (  # noqa: F401  (imported for registration)
    ext_detect,
    ext_methodology,
    ext_multibit,
    ext_population,
    ext_predict,
    ext_protect,
    ext_scaling,
    ext_sizes,
    ext_theory,
    fig03_ieee_bitflip,
    fig07_accuracy,
    fig10_posit_vs_ieee,
    fig11_regime_gt1,
    fig14_regime_lt1,
    fig16_fraction,
    fig18_exponent,
    fig20_signbit,
    table1_datasets,
    worked_examples,
)

__all__ = [
    "ExperimentOutput",
    "ExperimentParams",
    "ExperimentSpec",
    "experiment_ids",
    "get_experiment",
    "register_experiment",
    "run_experiments",
]
