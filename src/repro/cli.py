"""Command-line interface.

::

    posit-resiliency datasets                      # Table 1 summary
    posit-resiliency targets                       # available number systems
    posit-resiliency experiments                   # list experiment ids
    posit-resiliency experiment fig10 --quick      # run one experiment
    posit-resiliency experiment all                # run every experiment
    posit-resiliency campaign run nyx/temperature posit32 --trials 313 \
        --jobs 4 --run-dir runs/nyx --out trials.csv
    posit-resiliency campaign run ... --executor work-stealing
    posit-resiliency campaign resume runs/nyx      # continue after interrupt
    posit-resiliency campaign status runs/nyx      # shard/trial progress
    posit-resiliency campaign status runs/nyx --json   # machine-readable
    posit-resiliency campaign verify runs/nyx      # audit run-dir integrity
    posit-resiliency campaign run ... --profile    # collect telemetry
    posit-resiliency config init                   # create ~/.repro (or $REPRO_HOME)
    posit-resiliency campaign submit nyx/temperature posit32 --trials 32
    posit-resiliency campaign run ... --fault "adjacent(2)"  # multi-bit model
    posit-resiliency campaign sweep nyx/temperature \
        --formats posit32,ieee32 --faults "single,adjacent(2),random(3)"
    posit-resiliency campaign run --app cg posit16 --inject-at 5,10
    posit-resiliency campaign sweep --app cg \
        --formats posit32,ieee32 --faults "single,adjacent(2)"
    posit-resiliency campaign worker <run-dir-or-id>   # claim shards via leases
    posit-resiliency campaign watch <run-dir-or-id> --until-done
    posit-resiliency campaign list                 # registry index
    posit-resiliency campaign get <run-id> --json  # canonical run state
    posit-resiliency campaign cancel <run-id>      # cooperative cancel
    posit-resiliency campaign submit ... --trace   # fleet-wide tracing on
    posit-resiliency campaign top <run-dir-or-id>  # live per-worker fleet view
    posit-resiliency campaign trace export <run>   # Chrome trace-event JSON
    posit-resiliency campaign metrics <run> --format prometheus
    posit-resiliency telemetry report runs/nyx     # per-phase time breakdown
    posit-resiliency conformance run --level smoke # gate codecs + metrics
    posit-resiliency conformance bless             # refresh golden fixtures
    posit-resiliency inspect 186.25                # show representations

Also runnable as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_datasets(args) -> int:
    from repro.datasets.registry import keys
    from repro.datasets.summary import summarize_field
    from repro.reporting.series import Table
    from repro.reporting.tables import render_table

    table = Table(
        title="Registered dataset fields",
        columns=["key", "dims", "mean", "median", "max", "min", "std"],
    )
    for key in keys():
        summary = summarize_field(key, seed=args.seed, size=args.size)
        stats = summary.generated
        table.add_row([
            key,
            "x".join(str(d) for d in summary.preset.dimensions),
            stats.mean, stats.median, stats.maximum, stats.minimum, stats.std,
        ])
    print(render_table(table))
    return 0


def _cmd_targets(args) -> int:
    from repro.formats import available_formats, resolve

    names = list(available_formats())
    names.extend(spec for spec in args.spec if spec not in names)
    for name in names:
        target = resolve(name)
        print(f"{name:26s} {target.nbits:3d} bits  [{target.backend_name:6s}]  {target.describe()}")
    print()
    print("Any spec also works: posit<N>[es<E>], binary(<E>,<F>), "
          "fixedposit(<N>[,es=<E>][,r=<R>]) — e.g. posit16es1, binary(8,23).")
    return 0


def _cmd_experiments(_args) -> int:
    from repro.experiments import experiment_ids, get_experiment

    for exp_id in experiment_ids():
        spec = get_experiment(exp_id)
        print(f"{exp_id:14s} [{spec.paper_ref}] {spec.title}")
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments import ExperimentParams, experiment_ids, get_experiment

    if args.quick:
        params = ExperimentParams.quick()
    elif args.paper_scale:
        params = ExperimentParams.paper_scale()
    else:
        params = ExperimentParams()
    if args.size or args.trials:
        params = ExperimentParams(
            data_size=args.size or params.data_size,
            trials_per_bit=args.trials or params.trials_per_bit,
            seed=args.seed,
        )
    ids = experiment_ids() if args.id == "all" else [args.id]
    failures = 0
    for exp_id in ids:
        output = get_experiment(exp_id).run(params)
        print(output.render())
        print()
        failures += len(output.failed_checks())
    if failures:
        print(f"{failures} check(s) FAILED", file=sys.stderr)
        return 1
    return 0


def _jobs_arg(value: str) -> int:
    """Argparse type for worker counts: a positive integer."""
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"jobs must be an integer, got {value!r}") from None
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _campaign_jobs(args) -> int | None:
    """Merge --jobs with the deprecated --workers alias (None = auto)."""
    if getattr(args, "workers", None) is not None:
        import warnings

        if args.jobs is not None:
            raise SystemExit("error: pass either --jobs or --workers, not both")
        warnings.warn(
            "--workers is deprecated; use --jobs", DeprecationWarning, stacklevel=2
        )
        return args.workers
    return args.jobs


def _print_campaign_result(result, field: str, target: str, out: str | None) -> None:
    print(
        f"campaign: {result.trial_count} trials on {field} as "
        f"{result.target_name} (data size {result.data_size})"
    )
    print(
        f"conversion: mean rel err {result.conversion.mean_relative_error:.3e}, "
        f"exact fraction {result.conversion.exact_fraction:.3f}"
    )
    if result.extras.get("run_dir"):
        resumed = result.extras.get("resumed_shards", 0)
        note = f" ({resumed} shard(s) restored)" if resumed else ""
        print(f"run dir: {result.extras['run_dir']}{note}")
    snapshot = result.extras.get("telemetry")
    if snapshot is not None and not snapshot.empty:
        from repro.telemetry import format_duration

        breakdown = ", ".join(
            f"{phase} {format_duration(seconds)}"
            for phase, seconds in sorted(
                snapshot.phase_seconds().items(), key=lambda kv: -kv[1]
            )
        )
        print(f"profile: {breakdown}")
        if result.extras.get("run_dir"):
            print(
                "profile: full breakdown via "
                f"`posit-resiliency telemetry report {result.extras['run_dir']}`"
            )
    if out:
        result.records.write_csv(out)
        print(f"wrote {out}")
    else:
        from repro.analysis.aggregate import aggregate_by_bit
        from repro.reporting.series import Figure, Series
        from repro.reporting.tables import render_series_table

        agg = aggregate_by_bit(result.records, result.records.bit.max() + 1)
        figure = Figure(
            title=f"mean relative error per bit ({field}, {target})",
            x_label="bit",
            y_label="mean rel err",
        )
        figure.add(Series(target, agg.bits, agg.mean_rel_err))
        print(render_series_table(figure))


def _parse_inject_at(text: str) -> tuple[int, ...]:
    """Argparse helper: --inject-at as 1-based solver iterations."""
    try:
        schedule = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise SystemExit(
            f"error: --inject-at must be comma-separated iteration numbers, "
            f"got {text!r}"
        ) from None
    if not schedule:
        raise SystemExit("error: --inject-at needs at least one iteration")
    return schedule


def _app_target_spec(args) -> str:
    """The single positional (the format spec) in --app mode.

    The ``field`` and ``target`` positionals are both optional so that
    app campaigns can be spelled ``campaign run --app cg posit32``;
    argparse binds that lone positional to ``field``.
    """
    positionals = [p for p in (args.field, args.target) if p is not None]
    if len(positionals) != 1:
        raise SystemExit(
            "error: with --app, give exactly one positional argument — the "
            "format spec (e.g. `campaign run --app cg posit32`)"
        )
    return positionals[0]


def _print_app_campaign_result(result, app: str, target: str, out: str | None) -> None:
    from repro.analysis.appsweep import outcome_counts

    counts = outcome_counts(result.records)
    print(
        f"app campaign: {result.trial_count} fault trials on {app} as "
        f"{result.target_name} (state size {result.data_size})"
    )
    print("outcomes: " + ", ".join(f"{k}={v}" for k, v in counts.items()))
    if result.extras.get("run_dir"):
        resumed = result.extras.get("resumed_shards", 0)
        note = f" ({resumed} shard(s) restored)" if resumed else ""
        print(f"run dir: {result.extras['run_dir']}{note}")
    if out:
        result.records.write_csv(out)
        print(f"wrote {out}")


def _cmd_app_campaign_run(args) -> int:
    from repro.apps.campaign import AppCampaignConfig, run_app_campaign
    from repro.inject.faultspec import FaultSpecError

    target = _app_target_spec(args)
    try:
        config = AppCampaignConfig(
            app=args.app,
            grid=args.grid,
            iterations=_parse_inject_at(args.inject_at),
            trials_per_cell=args.trials if args.trials is not None else 3,
            seed=args.seed,
            fault=args.fault,
            sdc_threshold=args.sdc_threshold,
        )
    except (FaultSpecError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    result = run_app_campaign(
        config,
        target,
        jobs=_campaign_jobs(args),
        executor=args.executor,
        run_dir=args.run_dir,
        progress=args.progress,
        resume=args.resume,
        telemetry=True if args.profile else None,
        trace=True if args.trace else None,
    )
    _print_app_campaign_result(result, config.app, target, args.out)
    return 0


def _cmd_campaign_run(args) -> int:
    from repro.datasets.registry import get as get_preset
    from repro.inject.campaign import CampaignConfig, run_campaign
    from repro.inject.faultspec import FaultSpecError

    if args.app:
        return _cmd_app_campaign_run(args)
    if args.field is None or args.target is None:
        print("error: campaign run needs FIELD and TARGET positionals "
              "(or --app APP with a single format positional)", file=sys.stderr)
        return 2
    preset = get_preset(args.field)
    data = preset.generate(seed=args.seed, size=args.size)
    try:
        config = CampaignConfig(
            trials_per_bit=args.trials if args.trials is not None else 313,
            seed=args.seed,
            fault=args.fault,
        )
    except FaultSpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    result = run_campaign(
        data,
        args.target,
        config,
        label=args.field,
        jobs=_campaign_jobs(args),
        executor=args.executor,
        run_dir=args.run_dir,
        progress=args.progress,
        resume=args.resume,
        telemetry=True if args.profile else None,
        trace=True if args.trace else None,
        dataset={
            "kind": "preset",
            "field": args.field,
            "size": args.size,
            "seed": args.seed,
        },
    )
    _print_campaign_result(result, args.field, args.target, args.out)
    return 0


def _cmd_campaign_resume(args) -> int:
    from repro.runner import resume_campaign

    if args.fault is not None:
        # --fault on resume is a guard, not an override: the manifest
        # owns the run's fault model (it is part of the identity).
        from repro.inject.faultspec import FaultSpecError, resolve_fault
        from repro.runner.manifest import RunManifest

        try:
            requested = resolve_fault(args.fault).spec
        except FaultSpecError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        recorded = RunManifest.load(args.run_dir).fault
        if requested != recorded:
            print(
                f"error: run {args.run_dir} was created with fault model "
                f"{recorded!r}, not {requested!r}; the fault model is part "
                "of the run identity and cannot change on resume",
                file=sys.stderr,
            )
            return 1
    result = resume_campaign(
        args.run_dir, jobs=_campaign_jobs(args), executor=args.executor,
        progress=args.progress,
        telemetry=True if args.profile else None,
        trace=True if args.trace else None,
    )
    field = result.label or "dataset"
    if hasattr(result.records, "outcome"):
        _print_app_campaign_result(result, field, result.target_name, args.out)
    else:
        _print_campaign_result(result, field, result.target_name, args.out)
    return 0


def _cmd_telemetry_report(args) -> int:
    from repro.telemetry import render_prometheus, load_run_snapshot, render_run_report

    try:
        if args.format == "markdown":
            text = render_run_report(args.run_dir)
        else:
            snapshot = load_run_snapshot(args.run_dir)
            if snapshot is None:
                print(
                    f"error: no telemetry.json in {args.run_dir} "
                    "(run the campaign with --profile or REPRO_TELEMETRY=1)",
                    file=sys.stderr,
                )
                return 1
            if args.format == "prometheus":
                text = render_prometheus(snapshot)
            else:  # json
                import json

                text = json.dumps(snapshot.to_json(), indent=2, sort_keys=True)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text if text.endswith("\n") else text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_campaign_status(args) -> int:
    from repro.runner import RunnerError, run_status

    try:
        status = run_status(args.run_dir)
    except (RunnerError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        import json

        from repro.service import run_status_payload

        print(json.dumps(run_status_payload(args.run_dir), indent=2))
    else:
        print(status.summary())
    return 0 if status.complete else 2


def _resolve_service_run_dir(ref: str):
    """A run directory from a registry id or path, exiting 1 on failure."""
    from repro.service import RunRegistry, ServiceError

    try:
        return RunRegistry().resolve_run_dir(ref)
    except (ServiceError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(1) from None


def _cmd_campaign_submit(args) -> int:
    from repro.service import RunRegistry, ServiceError

    bits = tuple(range(args.bits)) if args.bits is not None else None
    try:
        if args.app:
            entry = RunRegistry().submit_app_run(
                args.app,
                _app_target_spec(args),
                grid=args.grid,
                iterations=_parse_inject_at(args.inject_at),
                trials_per_cell=args.trials if args.trials is not None else 3,
                bits=bits,
                seed=args.seed,
                fault=args.fault,
                sdc_threshold=args.sdc_threshold,
                label=args.label or args.app,
                project=args.project,
                trace=args.trace,
            )
        else:
            if args.field is None or args.target is None:
                print("error: campaign submit needs FIELD and TARGET positionals "
                      "(or --app APP with a single format positional)",
                      file=sys.stderr)
                return 2
            entry = RunRegistry().submit_run(
                args.field,
                args.target,
                trials_per_bit=args.trials if args.trials is not None else 313,
                bits=bits,
                seed=args.seed,
                size=args.size,
                data_seed=args.seed,
                label=args.label or args.field,
                project=args.project,
                trace=args.trace,
                fault=args.fault,
            )
    except (ServiceError, KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        import json

        print(json.dumps(entry.to_json(), indent=2))
    else:
        print(f"submitted {entry.run_id} -> {entry.run_dir}")
        print(f"start workers with: posit-resiliency campaign worker {entry.run_id}")
    return 0


def _split_specs(text: str) -> list[str]:
    """Split a comma-separated spec list, respecting parentheses.

    Both format specs (``binary(8,23)``) and fault specs
    (``stuckat(31,1)``) contain commas of their own, so the list
    separator is only a comma at parenthesis depth zero.
    """
    parts, depth, start = [], 0, 0
    for i, char in enumerate(text):
        if char == "(":
            depth += 1
        elif char == ")":
            depth = max(depth - 1, 0)
        elif char == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return [part for part in (p.strip() for p in parts) if part]


def _cmd_campaign_sweep(args) -> int:
    from repro.inject.faultspec import FaultSpecError, resolve_fault
    from repro.service import RunRegistry, ServiceError

    formats = _split_specs(args.formats)
    faults = _split_specs(args.faults)
    if not formats or not faults:
        print("error: --formats and --faults each need at least one entry",
              file=sys.stderr)
        return 1
    try:
        faults = [resolve_fault(spec).spec for spec in faults]
    except FaultSpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.app and args.field is not None:
        print("error: campaign sweep takes either FIELD (value campaign) or "
              "--app APP (app campaign), not both", file=sys.stderr)
        return 2
    if not args.app and args.field is None:
        print("error: campaign sweep needs the FIELD positional (or --app APP)",
              file=sys.stderr)
        return 2
    registry = RunRegistry()
    bits = tuple(range(args.bits)) if args.bits is not None else None
    entries = []
    try:
        for fmt in formats:
            for fault in faults:
                if args.app:
                    entries.append(registry.submit_app_run(
                        args.app,
                        fmt,
                        grid=args.grid,
                        iterations=_parse_inject_at(args.inject_at),
                        trials_per_cell=(
                            args.trials if args.trials is not None else 3
                        ),
                        bits=bits,
                        seed=args.seed,
                        fault=fault,
                        sdc_threshold=args.sdc_threshold,
                        label=f"{args.app} [{fault}]",
                        project=args.project,
                        trace=args.trace,
                    ))
                else:
                    entries.append(registry.submit_run(
                        args.field,
                        fmt,
                        trials_per_bit=(
                            args.trials if args.trials is not None else 313
                        ),
                        bits=bits,
                        seed=args.seed,
                        size=args.size,
                        data_seed=args.seed,
                        label=f"{args.field} [{fault}]",
                        project=args.project,
                        trace=args.trace,
                        fault=fault,
                    ))
    except (ServiceError, KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        for entry in entries:
            print(f"note: {entry.run_id} was submitted before the failure",
                  file=sys.stderr)
        return 1
    if args.json:
        import json

        print(json.dumps([entry.to_json() for entry in entries], indent=2))
        return 0
    print(
        f"swept {len(formats)} format(s) x {len(faults)} fault model(s): "
        f"{len(entries)} run(s) submitted"
    )
    for entry in entries:
        print(f"  {entry.run_id:<20s} {entry.target:<14s} {entry.label}")
    print("start workers with: posit-resiliency campaign worker <run-id>")
    return 0


def _cmd_campaign_list(args) -> int:
    from repro.service import RunRegistry, run_status_payload

    entries = RunRegistry().list_runs(args.project)
    if args.json:
        import json

        print(json.dumps([entry.to_json() for entry in entries], indent=2))
        return 0
    if not entries:
        print("no registered runs (use `campaign submit` to create one)")
        return 0
    for entry in entries:
        try:
            payload = run_status_payload(entry.run_dir)
            state = (
                f"{payload['status']:<11s} "
                f"{payload['shards']['done']}/{payload['shards']['total']} shards"
            )
        except Exception as error:
            state = f"unreadable ({error})"
        print(
            f"{entry.run_id:<20s} {entry.project:<10s} "
            f"{entry.field:<18s} {entry.target:<12s} {state}"
        )
    return 0


def _cmd_campaign_get(args) -> int:
    run_dir = _resolve_service_run_dir(args.run)
    from repro.runner import run_status
    from repro.service import run_status_payload

    if args.json:
        import json

        print(json.dumps(run_status_payload(run_dir), indent=2))
    else:
        print(run_status(run_dir).summary())
    return 0


def _cmd_campaign_watch(args) -> int:
    from repro.service import WATCH_CANCELLED, WATCH_IDLE, watch_run

    run_dir = _resolve_service_run_dir(args.run)
    outcome = watch_run(
        run_dir,
        follow=not args.no_follow,
        until_done=args.until_done,
        timeout=args.timeout,
        poll_interval=args.poll_interval,
        json_mode=args.json,
        stall_after=args.stall_after,
    )
    if outcome == WATCH_CANCELLED:
        return 3
    if outcome == WATCH_IDLE and args.until_done:
        return 2
    return 0


def _cmd_campaign_cancel(args) -> int:
    from repro.service import RunRegistry, ServiceError

    try:
        run_dir = RunRegistry().cancel(args.run, reason=args.reason)
    except (ServiceError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"cancel requested for {run_dir} (workers stop at their next claim)")
    return 0


def _cmd_campaign_worker(args) -> int:
    from repro.runner import RunnerError
    from repro.runner.worker import run_worker

    run_dir = _resolve_service_run_dir(args.run)
    try:
        result = run_worker(
            run_dir,
            worker_id=args.worker_id,
            lease_timeout=args.lease_timeout,
            poll_interval=args.poll_interval,
            max_claims=args.max_claims,
            max_idle_seconds=args.max_idle,
            telemetry=True if args.profile else None,
            trace=True if args.trace else None,
        )
    except (RunnerError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(
        f"worker {result.worker}: {result.claims} shard(s) computed, "
        f"{result.stolen} lease(s) stolen, exit status {result.status}"
        + (" (finalized the run)" if result.finalized else "")
    )
    return 3 if result.status == "cancelled" else 0


def _cmd_campaign_top(args) -> int:
    from repro.service import campaign_top, fleet_snapshot

    run_dir = _resolve_service_run_dir(args.run)
    if args.json:
        import json

        snapshot = fleet_snapshot(
            run_dir,
            straggler_factor=args.straggler_factor,
            stall_after=args.stall_after,
        )
        print(json.dumps(snapshot.to_json(), indent=2, sort_keys=True))
        return 3 if snapshot.cancelled else 0
    try:
        return campaign_top(
            run_dir,
            refresh=args.refresh,
            iterations=1 if args.once else None,
            straggler_factor=args.straggler_factor,
            stall_after=args.stall_after,
        )
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_campaign_trace_export(args) -> int:
    from repro.telemetry import read_trace, write_chrome_trace

    run_dir = _resolve_service_run_dir(args.run)
    if not read_trace(run_dir):
        print(
            f"error: no trace records under {run_dir} "
            "(run the campaign with --trace or REPRO_TRACE=1)",
            file=sys.stderr,
        )
        return 1
    out = write_chrome_trace(run_dir, out=args.out)
    print(f"wrote {out} (load via chrome://tracing or https://ui.perfetto.dev)")
    return 0


def _cmd_campaign_metrics(args) -> int:
    from repro.telemetry import (
        aggregate_metrics,
        read_metrics,
        render_metrics_prometheus,
    )

    run_dir = _resolve_service_run_dir(args.run)
    series = read_metrics(run_dir)
    if not series:
        print(
            f"error: no metrics series under {run_dir} "
            "(run the campaign with --trace or REPRO_TRACE=1)",
            file=sys.stderr,
        )
        return 1
    if args.format == "prometheus":
        text = render_metrics_prometheus(series)
    else:  # json
        import json

        text = json.dumps(
            {
                "schema": "repro.fleet-metrics/1",
                "workers": series,
                "run": aggregate_metrics(series),
            },
            indent=2,
            sort_keys=True,
        )
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text if text.endswith("\n") else text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_config_init(args) -> int:
    from repro.service import init_config

    config = init_config(args.home, force=args.force)
    print(f"initialized {config.home}")
    print(f"  runs:  {config.runs_dir}")
    print(f"  cache: {config.cache_dir}")
    return 0


def _cmd_config_show(args) -> int:
    import json

    from repro.service import load_config

    config = load_config(args.home)
    print(json.dumps({"home": str(config.home), **config.to_json()}, indent=2))
    return 0


def _cmd_campaign_verify(args) -> int:
    from repro.runner import verify_run

    report = verify_run(args.run_dir)
    print(report.render())
    return report.exit_code


def _cmd_conformance_run(args) -> int:
    from repro.conformance import run_conformance

    kwargs = {"golden_dir": args.golden_dir}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    report = run_conformance(args.level, args.format or None, **kwargs)
    text = report.render()
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text if text.endswith("\n") else text + "\n")
        print(f"wrote {args.out}")
    print(text)
    return report.exit_code


def _cmd_conformance_bless(args) -> int:
    from repro.conformance import bless

    paths = bless(args.golden_dir, formats=args.format or None)
    for path in paths:
        print(f"blessed {path}")
    return 0


def _cmd_suite(args) -> int:
    from repro.inject.suite import SuiteConfig, run_suite

    if args.fields:
        fields = tuple(args.fields.split(","))
        config = SuiteConfig(
            fields=fields, data_size=args.size,
            trials_per_bit=args.trials, seed=args.seed,
        )
    else:
        config = SuiteConfig.paper_grid(
            data_size=args.size, trials_per_bit=args.trials, seed=args.seed
        )

    def progress(field_key, target, campaign):
        if campaign is None:
            print(f"  [skip] {field_key} x {target} (log exists)")
        else:
            print(f"  [done] {field_key} x {target}: {campaign.trial_count} trials")

    result = run_suite(config, args.out, workers=args.workers,
                       resume=not args.no_resume, progress=progress)
    print(
        f"suite: {len(result.completed)} campaigns run, "
        f"{len(result.skipped)} resumed from {args.out}"
    )
    return 0


def _cmd_report(args) -> int:
    from repro.experiments import ExperimentParams
    from repro.reporting.report import generate_report

    if args.quick:
        params = ExperimentParams.quick()
    elif args.paper_scale:
        params = ExperimentParams.paper_scale()
    else:
        params = ExperimentParams()
    path = generate_report(args.out, params)
    print(f"wrote {path}")
    return 0


def _cmd_inspect(args) -> int:
    from repro.formats import resolve

    value = float(args.value)
    targets = [resolve(spec) for spec in (args.target or ["ieee32", "posit32"])]
    width = max(max(len(target.name) for target in targets) + 1, 7)
    print(f"value:{'':{width - 5}s}{value!r}")
    for target in targets:
        bits = int(np.atleast_1d(target.to_bits(np.float64(value)))[0])
        stored = float(np.atleast_1d(target.from_bits(np.asarray([bits], dtype=target.dtype)))[0])
        hex_width = (target.nbits + 3) // 4
        print(f"{target.name}:{'':{width - len(target.name)}s}"
              f"{target.layout_string(bits)}  (0x{bits:0{hex_width}x})")
        if stored != value:
            print(f"{'':{width + 1}s}decodes to {stored!r}")
    return 0


def _cmd_verify(args) -> int:
    from repro.inject.results import TrialRecords
    from repro.inject.validate import verify_records

    records = TrialRecords.read_csv(args.log)
    report = verify_records(records, args.target)
    print(report.summary())
    for example in report.examples:
        print(f"  {example}")
    return 0 if report.ok else 1


def _cmd_predict(args) -> int:
    from repro.analysis.edgecases import FlipEvent
    from repro.analysis.predict import predict_flip as posit_predict
    from repro.formats import PositTarget, resolve
    from repro.reporting.series import Table
    from repro.reporting.tables import render_table

    value = float(args.value)
    targets = [resolve(spec) for spec in (args.target or ["ieee32", "posit32"])]
    columns = ["bit"]
    for target in targets:
        columns += [f"{target.name} faulty", f"{target.name} rel err"]
        if isinstance(target, PositTarget):
            columns.append(f"{target.name} event")
    table = Table(title=f"Predicted single-flip outcomes for {value!r}", columns=columns)

    stored = {}
    for target in targets:
        bits = int(np.atleast_1d(target.to_bits(np.float64(value)))[0])
        stored[target.name] = (
            bits,
            float(np.atleast_1d(target.from_bits(np.asarray([bits], dtype=target.dtype)))[0]),
        )
    for bit in range(max(t.nbits for t in targets) - 1, -1, -1):
        row = [bit]
        for target in targets:
            if bit >= target.nbits:
                row += ["-", "-"] + (["-"] if isinstance(target, PositTarget) else [])
                continue
            bits, base = stored[target.name]
            faulty = float(
                np.atleast_1d(
                    target.from_bits(np.asarray([bits ^ (1 << bit)], dtype=target.dtype))
                )[0]
            )
            rel = abs(base - faulty) / abs(base) if base != 0 else float("nan")
            row += [faulty, rel]
            if isinstance(target, PositTarget):
                pattern = np.asarray([bits], dtype=np.uint64)
                prediction = posit_predict(pattern, bit, target.config)
                row.append(FlipEvent(int(prediction.event[0])).name)
        table.add_row(row)
    print(render_table(table))
    return 0


def _add_app_options(parser) -> None:
    """The app-campaign flags shared by campaign run/submit/sweep."""
    parser.add_argument("--app", choices=("cg", "jacobi"), default=None,
                        help="application campaign: inject into live solver "
                        "state of this app instead of a dataset field")
    parser.add_argument("--grid", type=int, default=16,
                        help="Poisson grid side for --app (default: 16)")
    parser.add_argument("--inject-at", default="10",
                        help="comma-separated 1-based solver iterations to "
                        "inject at, e.g. 1,10,50 (default: 10)")
    parser.add_argument("--sdc-threshold", type=float, default=1e-3,
                        help="relative solution error above which a converged "
                        "run counts as silent data corruption (default: 1e-3)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="posit-resiliency",
        description="Posit vs IEEE-754 bit-flip resiliency study "
        "(reproduction of Schlueter et al., SC-W 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="summarize registered dataset fields")
    p.add_argument("--size", type=int, default=1 << 17)
    p.add_argument("--seed", type=int, default=2023)
    p.set_defaults(func=_cmd_datasets)

    p = sub.add_parser("targets", help="list injection targets / format specs")
    p.add_argument("--spec", action="append", default=[],
                   help="also describe this format spec (repeatable)")
    p.set_defaults(func=_cmd_targets)

    p = sub.add_parser("experiments", help="list experiments")
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser("experiment", help="run one experiment (or 'all')")
    p.add_argument("id")
    p.add_argument("--quick", action="store_true", help="CI-speed parameters")
    p.add_argument("--paper-scale", action="store_true", help="paper-sized run")
    p.add_argument("--size", type=int, default=None)
    p.add_argument("--trials", type=int, default=None)
    p.add_argument("--seed", type=int, default=2023)
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("campaign", help="run/resume/inspect a fault-injection campaign")
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)

    pr = campaign_sub.add_parser("run", help="run a campaign (optionally checkpointed)")
    pr.add_argument("field", nargs="?", default=None,
                    help="dataset field key, e.g. nyx/temperature (with "
                    "--app: the single positional is the format spec)")
    pr.add_argument("target", nargs="?", default=None,
                    help="injection target or format spec, "
                    "e.g. posit32, posit16es1, binary(8,23)")
    pr.add_argument("--size", type=int, default=1 << 17)
    pr.add_argument("--trials", type=int, default=None,
                    help="trials per shard (default: 313, or 3 per "
                    "(iteration, bit) cell with --app)")
    pr.add_argument("--seed", type=int, default=2023)
    _add_app_options(pr)
    pr.add_argument("--fault", default="single",
                    help="fault-model spec: single, adjacent(<k>), "
                    "random(<k>), burst(<k>,<p>), stuckat(<pos>,<v>) "
                    "(default: single)")
    pr.add_argument("--jobs", type=_jobs_arg, default=None,
                    help="worker processes (default: auto-size to CPUs)")
    pr.add_argument("--workers", type=_jobs_arg, default=None,
                    help=argparse.SUPPRESS)  # deprecated alias for --jobs
    pr.add_argument("--executor", choices=("serial", "pool", "work-stealing"),
                    default=None,
                    help="execution mechanism (default: serial or pool "
                    "chosen from --jobs); work-stealing requires --run-dir")
    pr.add_argument("--run-dir", default=None,
                    help="checkpoint directory (manifest + per-shard logs + events)")
    pr.add_argument("--resume", action="store_true",
                    help="continue an interrupted run in --run-dir")
    pr.add_argument("--progress", action="store_true",
                    help="render live shard progress")
    pr.add_argument("--profile", action="store_true",
                    help="collect span/counter telemetry (writes "
                    "telemetry.json into --run-dir)")
    pr.add_argument("--trace", action="store_true",
                    help="distributed tracing: write trace spans and metrics "
                    "time-series into --run-dir (trace/, metrics/)")
    pr.add_argument("--out", default=None, help="write trial CSV here")
    pr.set_defaults(func=_cmd_campaign_run)

    pres = campaign_sub.add_parser(
        "resume", help="resume an interrupted run from its directory"
    )
    pres.add_argument("run_dir", help="run directory with a manifest.json")
    pres.add_argument("--fault", default=None,
                      help="assert the run's fault model (errors if it "
                      "differs from the manifest; the model itself always "
                      "comes from the manifest)")
    pres.add_argument("--jobs", type=_jobs_arg, default=None,
                      help="worker processes (default: auto-size to CPUs)")
    pres.add_argument("--workers", type=_jobs_arg, default=None,
                      help=argparse.SUPPRESS)
    pres.add_argument("--executor", choices=("serial", "pool", "work-stealing"),
                      default=None,
                      help="execution mechanism (default: serial or pool "
                      "chosen from --jobs)")
    pres.add_argument("--progress", action="store_true",
                      help="render live shard progress")
    pres.add_argument("--profile", action="store_true",
                      help="collect span/counter telemetry for the resumed "
                      "shards (writes telemetry.json into the run directory)")
    pres.add_argument("--trace", action="store_true",
                      help="distributed tracing for the resumed shards "
                      "(also re-enabled automatically when the run was "
                      "submitted with --trace)")
    pres.add_argument("--out", default=None, help="write trial CSV here")
    pres.set_defaults(func=_cmd_campaign_resume)

    pst = campaign_sub.add_parser("status", help="summarize a run directory")
    pst.add_argument("run_dir", help="run directory with a manifest.json")
    pst.add_argument("--json", action="store_true",
                     help="emit the canonical repro.run-status/1 JSON payload "
                     "(same schema as `campaign get --json`)")
    pst.set_defaults(func=_cmd_campaign_status)

    psub = campaign_sub.add_parser(
        "submit",
        help="register a campaign in submitted state (no execution); "
        "`campaign worker` processes then claim its shards via leases",
    )
    psub.add_argument("field", nargs="?", default=None,
                      help="dataset field key, e.g. nyx/temperature (with "
                      "--app: the single positional is the format spec)")
    psub.add_argument("target", nargs="?", default=None,
                      help="injection target or format spec")
    psub.add_argument("--size", type=int, default=1 << 17)
    psub.add_argument("--trials", type=int, default=None,
                      help="trials per shard (default: 313, or 3 per "
                      "(iteration, bit) cell with --app)")
    psub.add_argument("--seed", type=int, default=2023)
    _add_app_options(psub)
    psub.add_argument("--bits", type=int, default=None,
                      help="only the lowest N bit positions (default: all)")
    psub.add_argument("--fault", default="single",
                      help="fault-model spec: single, adjacent(<k>), "
                      "random(<k>), burst(<k>,<p>), stuckat(<pos>,<v>) "
                      "(default: single)")
    psub.add_argument("--label", default=None, help="free-text label (default: field)")
    psub.add_argument("--project", default="default",
                      help="registry project scope (default: 'default')")
    psub.add_argument("--trace", action="store_true",
                      help="record distributed tracing in the manifest so "
                      "every worker writes trace spans + metrics series")
    psub.add_argument("--json", action="store_true",
                      help="emit the registry entry as JSON")
    psub.set_defaults(func=_cmd_campaign_submit)

    psw = campaign_sub.add_parser(
        "sweep",
        help="submit one run per (format x fault model) cell; workers "
        "then claim shards from every cell through leases",
    )
    psw.add_argument("field", nargs="?", default=None,
                     help="dataset field key, e.g. nyx/temperature "
                     "(omit with --app)")
    psw.add_argument("--formats", required=True,
                     help="comma-separated format specs, e.g. posit32,ieee32")
    psw.add_argument("--faults", default="single",
                     help="comma-separated fault-model specs, e.g. "
                     "single,adjacent(2),random(3) (default: single)")
    psw.add_argument("--size", type=int, default=1 << 17)
    psw.add_argument("--trials", type=int, default=None,
                     help="trials per shard (default: 313, or 3 per "
                     "(iteration, bit) cell with --app)")
    psw.add_argument("--seed", type=int, default=2023)
    _add_app_options(psw)
    psw.add_argument("--bits", type=int, default=None,
                     help="only the lowest N bit positions (default: all)")
    psw.add_argument("--project", default="default",
                     help="registry project scope (default: 'default')")
    psw.add_argument("--trace", action="store_true",
                     help="record distributed tracing in every cell's manifest")
    psw.add_argument("--json", action="store_true",
                     help="emit the submitted registry entries as JSON")
    psw.set_defaults(func=_cmd_campaign_sweep)

    plist = campaign_sub.add_parser("list", help="list registered runs")
    plist.add_argument("--project", default=None, help="filter by project")
    plist.add_argument("--json", action="store_true",
                       help="emit registry entries as JSON")
    plist.set_defaults(func=_cmd_campaign_list)

    pget = campaign_sub.add_parser(
        "get", help="state of one registered run (by id or run directory)"
    )
    pget.add_argument("run", help="registry run id or run directory path")
    pget.add_argument("--json", action="store_true",
                      help="emit the canonical repro.run-status/1 JSON payload")
    pget.set_defaults(func=_cmd_campaign_get)

    pw = campaign_sub.add_parser(
        "watch", help="stream a run's event feed (tails events.jsonl)"
    )
    pw.add_argument("run", help="registry run id or run directory path")
    pw.add_argument("--until-done", action="store_true",
                    help="keep following until the run completes or is cancelled")
    pw.add_argument("--timeout", type=float, default=None,
                    help="give up after this many seconds of event silence")
    pw.add_argument("--poll-interval", type=float, default=0.25,
                    help=argparse.SUPPRESS)
    pw.add_argument("--no-follow", action="store_true",
                    help="print the feed so far and exit")
    pw.add_argument("--json", action="store_true",
                    help="one JSON object per line: raw events plus "
                    "watch_throughput / watch_stall / watch_done records")
    pw.add_argument("--stall-after", type=float, default=None,
                    help="warn when no progress event lands for this many "
                    "seconds (default: 30 with --until-done, else off)")
    pw.set_defaults(func=_cmd_campaign_watch)

    pcan = campaign_sub.add_parser(
        "cancel", help="request cooperative cancellation of a run"
    )
    pcan.add_argument("run", help="registry run id or run directory path")
    pcan.add_argument("--reason", default="", help="recorded in the sentinel file")
    pcan.set_defaults(func=_cmd_campaign_cancel)

    pwk = campaign_sub.add_parser(
        "worker",
        help="work-stealing worker: claim pending shards of a submitted run "
        "through lease files (run any number, on any machine sharing the "
        "filesystem)",
    )
    pwk.add_argument("run", help="registry run id or run directory path")
    pwk.add_argument("--worker-id", default=None,
                     help="identity recorded in leases/events "
                     "(default: <hostname>-<pid>)")
    pwk.add_argument("--lease-timeout", type=float, default=30.0,
                     help="seconds after which an unrefreshed lease is stolen")
    pwk.add_argument("--poll-interval", type=float, default=0.2,
                     help=argparse.SUPPRESS)
    pwk.add_argument("--max-claims", type=int, default=None,
                     help="exit after computing this many shards")
    pwk.add_argument("--max-idle", type=float, default=None,
                     help="exit after this many seconds without progress")
    pwk.add_argument("--profile", action="store_true",
                     help="collect span/counter telemetry for this worker's "
                     "shards (written beside the done records and merged "
                     "into run-level reports)")
    pwk.add_argument("--trace", action="store_true",
                     help="distributed tracing for this worker (also enabled "
                     "automatically when the run was submitted with --trace)")
    pwk.set_defaults(func=_cmd_campaign_worker)

    pvf = campaign_sub.add_parser(
        "verify",
        help="audit a run directory: manifest, shard checksums, events, telemetry",
    )
    pvf.add_argument("run_dir", help="run directory with a manifest.json")
    pvf.set_defaults(func=_cmd_campaign_verify)

    ptop = campaign_sub.add_parser(
        "top",
        help="live fleet view: per-worker throughput, leases, stragglers "
        "(refreshes in place until the run completes)",
    )
    ptop.add_argument("run", help="registry run id or run directory path")
    ptop.add_argument("--refresh", type=float, default=2.0,
                      help="seconds between frames (default: 2)")
    ptop.add_argument("--once", action="store_true",
                      help="render one frame and exit")
    ptop.add_argument("--json", action="store_true",
                      help="emit one repro.fleet-snapshot/1 JSON document "
                      "and exit (implies --once)")
    ptop.add_argument("--straggler-factor", type=float, default=2.0,
                      help="flag shards slower than this multiple of the "
                      "median duration (and above p95; default: 2)")
    ptop.add_argument("--stall-after", type=float, default=30.0,
                      help="mark the run stalled after this many seconds "
                      "without a progress event (default: 30)")
    ptop.set_defaults(func=_cmd_campaign_top)

    ptrace = campaign_sub.add_parser(
        "trace", help="work with a traced run's span records"
    )
    trace_sub = ptrace.add_subparsers(dest="trace_command", required=True)
    pte = trace_sub.add_parser(
        "export",
        help="fold trace/*.jsonl into one Chrome trace-event JSON file "
        "(chrome://tracing / Perfetto)",
    )
    pte.add_argument("run", help="registry run id or run directory path")
    pte.add_argument("--out", default=None,
                     help="output path (default: <run-dir>/trace/chrome-trace.json)")
    pte.set_defaults(func=_cmd_campaign_trace_export)

    pmet = campaign_sub.add_parser(
        "metrics",
        help="fold metrics/*.jsonl time-series into run-level output",
    )
    pmet.add_argument("run", help="registry run id or run directory path")
    pmet.add_argument("--format", choices=("json", "prometheus"), default="json",
                      help="json: per-worker + aggregated series; prometheus: "
                      "latest gauges as a textfile-collector exposition")
    pmet.add_argument("--out", default=None,
                      help="write here instead of stdout")
    pmet.set_defaults(func=_cmd_campaign_metrics)

    p = sub.add_parser("telemetry", help="inspect a profiled run's telemetry")
    telemetry_sub = p.add_subparsers(dest="telemetry_command", required=True)
    ptr = telemetry_sub.add_parser(
        "report", help="render a run directory's events + telemetry"
    )
    ptr.add_argument("run_dir", help="run directory (manifest.json [+ telemetry.json])")
    ptr.add_argument("--format", choices=("markdown", "prometheus", "json"),
                     default="markdown",
                     help="markdown joins events with telemetry; prometheus/json "
                     "render the raw snapshot")
    ptr.add_argument("--out", default=None, help="write the report here "
                     "instead of stdout")
    ptr.set_defaults(func=_cmd_telemetry_report)

    p = sub.add_parser(
        "conformance",
        help="differential/metamorphic oracle over codecs, metrics, and goldens",
    )
    conformance_sub = p.add_subparsers(dest="conformance_command", required=True)

    pcr = conformance_sub.add_parser(
        "run", help="run the oracle (exit 0 clean / 1 errors / 2 warnings)"
    )
    pcr.add_argument("--level", choices=("smoke", "full"), default="smoke",
                     help="smoke: seeded samples; full: exhaustive <=16-bit lattices")
    pcr.add_argument("--format", action="append", default=None,
                     help="format spec to gate (repeatable; default: the paper roster)")
    pcr.add_argument("--golden-dir", default=None,
                     help="golden fixture directory (default tests/golden, "
                     "or $REPRO_GOLDEN_DIR)")
    pcr.add_argument("--seed", type=int, default=None,
                     help="root sampling seed (default: the oracle seed)")
    pcr.add_argument("--out", default=None,
                     help="also write the findings report to this file")
    pcr.set_defaults(func=_cmd_conformance_run)

    pcb = conformance_sub.add_parser(
        "bless", help="(re)generate the golden fixtures from the current tree"
    )
    pcb.add_argument("--format", action="append", default=None,
                     help="only refresh fixtures for this format (repeatable)")
    pcb.add_argument("--golden-dir", default=None,
                     help="golden fixture directory (default tests/golden)")
    pcb.set_defaults(func=_cmd_conformance_bless)

    p = sub.add_parser("suite", help="run the full (fields x targets) campaign grid")
    p.add_argument("--out", default="suite-results")
    p.add_argument("--fields", default=None, help="comma-separated keys (default: all)")
    p.add_argument("--size", type=int, default=1 << 17)
    p.add_argument("--trials", type=int, default=313)
    p.add_argument("--seed", type=int, default=2023)
    p.add_argument("--workers", type=_jobs_arg, default=None)
    p.add_argument("--no-resume", action="store_true",
                   help="re-run campaigns even when logs exist")
    p.set_defaults(func=_cmd_suite)

    p = sub.add_parser("report", help="write the full reproduction report")
    p.add_argument("--out", default="report")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--paper-scale", action="store_true")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("inspect", help="show a value's representations")
    p.add_argument("value")
    p.add_argument("--target", action="append", default=None,
                   help="format spec to render (repeatable; default ieee32 + posit32)")
    p.set_defaults(func=_cmd_inspect)

    p = sub.add_parser("predict", help="predicted per-bit flip outcomes for a value")
    p.add_argument("value")
    p.add_argument("--target", action="append", default=None,
                   help="format spec to predict (repeatable; default ieee32 + posit32)")
    p.set_defaults(func=_cmd_predict)

    p = sub.add_parser(
        "config", help="manage the service home ($REPRO_HOME, default ~/.repro)"
    )
    config_sub = p.add_subparsers(dest="config_command", required=True)
    pci = config_sub.add_parser(
        "init", help="create the home directory layout and config.json"
    )
    pci.add_argument("--home", default=None,
                     help="home directory (default: $REPRO_HOME or ~/.repro)")
    pci.add_argument("--force", action="store_true",
                     help="rewrite config.json even if it exists")
    pci.set_defaults(func=_cmd_config_init)
    pcs = config_sub.add_parser("show", help="print the resolved service paths")
    pcs.add_argument("--home", default=None,
                     help="home directory (default: $REPRO_HOME or ~/.repro)")
    pcs.set_defaults(func=_cmd_config_show)

    p = sub.add_parser("verify", help="re-derive a trial log and check integrity")
    p.add_argument("log", help="trial CSV written by a campaign")
    p.add_argument("target", help="the target the log claims, e.g. posit32")
    p.set_defaults(func=_cmd_verify)
    return parser


def main(argv: list[str] | None = None) -> int:
    # The legacy `campaign FIELD TARGET` shorthand (deprecated since the
    # subcommand split) is gone: `campaign run FIELD TARGET` is the form.
    parser = build_parser()
    args = parser.parse_args(sys.argv[1:] if argv is None else list(argv))
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
