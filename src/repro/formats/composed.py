"""Composed-LUT codec backend: wide patterns decoded as two table gathers.

The exhaustive :class:`~repro.formats.backends.LUTBackend` stops at 16
bits (2**16 table entries); a 32-bit format would need a 32 GiB table.
This backend extends table-driven decoding to widths up to 32 bits by
*composing* two 16-bit lookups: a pattern ``p`` splits into a high half
``hi`` and a low half ``lo``, and within one ``hi`` row the decoded
value is an affine function of ``lo`` wherever the format's field
boundaries do not move across the row::

    decode(hi:lo) == A1[hi] + B[hi] * (lo - 1)      for lo >= 1

For IEEE layouts the row exponent is fixed by ``hi`` (the exponent
field lives entirely in the high half), so ``B[hi]`` is the row ulp —
an exact power of two — and the sum carries at most
``fraction_bits + 1`` significant bits: float64 evaluation is *exact*,
not approximate.  For posits the same holds on every row whose regime
run terminates inside the high half (fraction width >= 16); rows where
the run spills into ``lo`` are not affine, and negative posits make
``lo == 0`` belong to the neighbouring row of the two's-complement
lattice, which is why the anchor sits at ``lo == 1`` and ``lo == 0``
has its own exact table ``A0``.

Affineness is *proved per row at build time*, not assumed: every row is
probed at all power-of-two boundaries of ``lo`` (plus neighbours and
the row ends) and the prediction compared bit-for-bit against the
direct codec; rows with a non-finite anchor/slope or any probe mismatch
are flagged and served by the direct codec element-wise.  The
conformance oracle additionally gates the backend exhaustively at <= 16
bits and with sampled + special-pattern corners at 32 bits.

``classify_bits`` / ``regime_sizes`` use the same row structure: a
row's field layout is fixed by ``hi`` unless the regime run reaches the
low half, so one ``(2**hi_bits, nbits)`` field table plus a stability
flag per row answers classification with one fancy gather.

``to_bits`` delegates to the direct codec: under the batched campaign
pipeline a dataset is encoded once per field (see
``NumberFormat.encode_once``), so decode is the only hot direction.
"""

from __future__ import annotations

import numpy as np

from repro.formats.backends import CodecBackend
from repro.telemetry import get_telemetry

#: Widest format the composed backend serves (two 16-bit halves).
COMPOSED_MAX_BITS = 32


def _float_bits(values: np.ndarray) -> np.ndarray:
    """Bit view of float64 values, for NaN-safe exact comparison."""
    return np.ascontiguousarray(np.asarray(values, dtype=np.float64)).view(np.int64)


class ComposedLUTBackend(CodecBackend):
    """Two-gather decode backend for formats up to 32 bits wide."""

    backend_name = "composed"

    def __init__(self, fmt) -> None:
        if fmt.nbits > COMPOSED_MAX_BITS:
            raise ValueError(
                f"composed backend supports formats up to {COMPOSED_MAX_BITS} bits, "
                f"but {fmt.name} has {fmt.nbits}"
            )
        if fmt.nbits < 2:
            raise ValueError(f"composed backend needs at least 2 bits, got {fmt.nbits}")
        self._fmt = fmt
        # 16/16 split for wide formats; narrow formats split down the
        # middle so the backend stays exhaustively testable at 16 bits.
        self._lo_bits = 16 if fmt.nbits > 16 else fmt.nbits // 2
        self._hi_bits = fmt.nbits - self._lo_bits
        self._lo_mask = np.int64((1 << self._lo_bits) - 1)
        self._mask = np.int64((1 << fmt.nbits) - 1)
        # Value tables (lazy): exact lo==0 column, lo==1 anchor, slope,
        # and the per-row proof that the affine prediction is bit-exact.
        self._a0: np.ndarray | None = None
        self._a1: np.ndarray | None = None
        self._b: np.ndarray | None = None
        self._affine: np.ndarray | None = None
        # Layout tables (lazy): per-row field of every bit, per-row
        # regime size, and the per-row layout-stability flag.
        self._classify_table: np.ndarray | None = None
        self._regime_table: np.ndarray | None = None
        self._layout_stable: np.ndarray | None = None

    # -- table construction (lazy) ---------------------------------------

    def _build(self, kind: str, builder):
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return builder()
        with telemetry.span("formats.composed.build"):
            result = builder()
        telemetry.count("formats.composed.tables_built")
        telemetry.count(f"formats.composed.tables_built.{kind}")
        return result

    def _hi_patterns(self) -> np.ndarray:
        """Every row's base pattern ``hi << lo_bits`` as int64."""
        return np.arange(1 << self._hi_bits, dtype=np.int64) << self._lo_bits

    def _decode(self, patterns: np.ndarray) -> np.ndarray:
        return np.asarray(
            self._fmt.decode_raw(patterns.astype(self._fmt.dtype)), dtype=np.float64
        )

    def _probe_los(self) -> list[int]:
        """Low-half probe offsets: all power-of-two boundaries +- 1.

        Field boundaries inside a row can only move at power-of-two
        positions of ``lo`` (a regime run or carry crossing a bit
        boundary), so probing every ``2**k - 1 / 2**k / 2**k + 1``
        triple plus the row ends witnesses every possible break.
        """
        los = {1, 2, 3, int(self._lo_mask), int(self._lo_mask) - 1}
        for k in range(2, self._lo_bits):
            los.update((2**k - 1, 2**k, 2**k + 1))
        return sorted(lo for lo in los if 1 <= lo <= int(self._lo_mask))

    def _ensure_values(self) -> None:
        if self._a1 is not None:
            return

        def build():
            base = self._hi_patterns()
            a0 = self._decode(base)
            a1 = self._decode(base | 1)
            with np.errstate(invalid="ignore"):
                b = self._decode(base | 2) - a1
                affine = np.isfinite(a1) & np.isfinite(b)
            for lo in self._probe_los():
                with np.errstate(over="ignore", invalid="ignore"):
                    predicted = a1 + b * float(lo - 1)
                actual = self._decode(base | lo)
                affine &= _float_bits(predicted) == _float_bits(actual)
            return a0, a1, b, affine

        self._a0, self._a1, self._b, self._affine = self._build("values", build)

    def _ensure_layout(self) -> None:
        if self._classify_table is not None:
            return

        def build():
            base = self._hi_patterns()
            nbits = self._fmt.nbits
            all_bits = list(range(nbits))
            # A row's layout is stable iff classification and regime
            # agree across low halves that maximally extend a zero run,
            # a one run, or neither.
            probes = [0, int(self._lo_mask)]
            alternating = 0x5555555555555555 & int(self._lo_mask)
            probes.extend({alternating, alternating << 1 & int(self._lo_mask)})
            tables = []
            regimes = []
            for lo in probes:
                patterns = (base | lo).astype(self._fmt.dtype)
                fields = np.asarray(self._fmt.classify_many_raw(patterns, all_bits))
                tables.append(fields.T.astype(np.int64, copy=False))
                regimes.append(np.asarray(self._fmt.regime_raw(patterns), dtype=np.int64))
            stable = np.ones(base.size, dtype=bool)
            for other in tables[1:]:
                stable &= np.all(tables[0] == other, axis=1)
            for other in regimes[1:]:
                stable &= regimes[0] == other
            return np.ascontiguousarray(tables[0]), regimes[0], stable

        self._classify_table, self._regime_table, self._layout_stable = self._build(
            "layout", build
        )

    # -- helpers ----------------------------------------------------------

    def _split(self, bits) -> tuple[np.ndarray, np.ndarray]:
        idx = np.asarray(bits).astype(np.int64) & self._mask
        return idx >> self._lo_bits, idx & self._lo_mask

    # -- backend protocol -------------------------------------------------

    def to_bits(self, values) -> np.ndarray:
        return self._fmt.encode_raw(values)

    def from_bits(self, bits) -> np.ndarray:
        self._ensure_values()
        shape = np.shape(np.asarray(bits))
        hi, lo = self._split(np.reshape(np.asarray(bits), -1))
        with np.errstate(over="ignore", invalid="ignore"):
            out = self._a1[hi] + self._b[hi] * (lo - 1).astype(np.float64)
        lo0 = lo == 0
        out = np.where(lo0, self._a0[hi], out)
        fallback = ~self._affine[hi] & ~lo0
        if np.any(fallback):
            patterns = ((hi << self._lo_bits) | lo)[fallback]
            out[fallback] = self._decode(patterns)
        return out.reshape(shape)

    def classify_bits(self, bits, bit_index: int) -> np.ndarray:
        self._ensure_layout()
        shape = np.shape(np.asarray(bits))
        hi, lo = self._split(np.reshape(np.asarray(bits), -1))
        out = self._classify_table[hi, bit_index]
        fallback = ~self._layout_stable[hi]
        if np.any(fallback):
            patterns = ((hi << self._lo_bits) | lo)[fallback].astype(self._fmt.dtype)
            out = np.asarray(out).copy()
            out[fallback] = np.asarray(
                self._fmt.classify_raw(patterns, bit_index), dtype=np.int64
            )
        return out.reshape(shape)

    def classify_rows(self, bits_rows, bit_indices) -> np.ndarray:
        """Row ``i`` of ``bits_rows`` classified at ``bit_indices[i]``."""
        self._ensure_layout()
        rows = np.asarray(bits_rows)
        bit_column = np.asarray(bit_indices, dtype=np.int64).reshape(
            (-1,) + (1,) * (rows.ndim - 1)
        )
        hi, lo = self._split(rows)
        out = self._classify_table[hi, np.broadcast_to(bit_column, hi.shape)]
        fallback = ~self._layout_stable[hi]
        if np.any(fallback):
            out = out.copy()
            for i, bit in enumerate(np.asarray(bit_indices).tolist()):
                row_bad = fallback[i]
                if not np.any(row_bad):
                    continue
                patterns = ((hi[i] << self._lo_bits) | lo[i])[row_bad]
                out[i][row_bad] = np.asarray(
                    self._fmt.classify_raw(patterns.astype(self._fmt.dtype), bit),
                    dtype=np.int64,
                )
        return out

    def regime_sizes(self, bits) -> np.ndarray:
        self._ensure_layout()
        shape = np.shape(np.asarray(bits))
        hi, lo = self._split(np.reshape(np.asarray(bits), -1))
        out = self._regime_table[hi].copy()
        fallback = ~self._layout_stable[hi]
        if np.any(fallback):
            patterns = ((hi << self._lo_bits) | lo)[fallback].astype(self._fmt.dtype)
            out[fallback] = np.asarray(self._fmt.regime_raw(patterns), dtype=np.int64)
        return out.reshape(shape)
