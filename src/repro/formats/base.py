"""The ``NumberFormat`` protocol: one interface over every number system.

A ``NumberFormat`` abstracts "how a float64 datum is stored in this
number system": conversion to a bit pattern, conversion of a (possibly
corrupted) pattern back to a float for metric evaluation, and per-bit
field classification.  The fault-injection engine, the CLI, the
application kernels and the detection machinery all speak this protocol
and nothing else, so a new number system plugs into every campaign by
implementing the five raw operations below and registering a spec.

Conversion semantics mirror the paper's Section 4.1.2: the datum is
first converted float -> format (rounding once), the flip happens on the
stored pattern, and the faulty pattern is converted back to float.  The
*original* value used for error metrics is the round-tripped value, not
the raw float — otherwise the conversion error would contaminate every
trial.

Concrete classes implement the ``*_raw`` methods; the public
``to_bits``/``from_bits``/``classify_bits``/``regime_sizes`` entry
points delegate to a pluggable codec backend (``direct`` or ``lut``,
see :mod:`repro.formats.backends`) chosen per format at construction.
``round_trip`` additionally memoizes its result per array fingerprint,
because campaigns re-store the same dataset many times (baseline,
conversion report, and every experiment sharing a field).
"""

from __future__ import annotations

import abc
import hashlib
from collections import OrderedDict

import numpy as np

from repro.telemetry import get_telemetry

#: Entries kept in each format's round-trip memo (arrays can be large,
#: so the cache is deliberately small: a campaign touches one or two
#: distinct datasets at a time).
_ROUND_TRIP_CACHE_SIZE = 8

#: The encode-once memo holds compact bit patterns (2-8 bytes per
#: element), and a multi-field campaign (the paper runs 16 fields)
#: seeds one entry per field via round_trip — so it keeps more entries
#: than the float64 round-trip memo.
_ENCODE_ONCE_CACHE_SIZE = 32


def _array_fingerprint(array: np.ndarray) -> tuple:
    """Content-hash cache key of a C-contiguous array."""
    return (
        array.dtype.str,
        array.shape,
        hashlib.blake2b(array.tobytes(), digest_size=16).digest(),
    )


class NumberFormat(abc.ABC):
    """A number system that stores float data and can suffer bit flips.

    Attributes
    ----------
    name:
        Canonical registry name; always a valid spec string, so any
        format — however parameterized — rehydrates across process
        boundaries via ``resolve(self.name)``.
    nbits:
        Width of one stored value in bits.
    """

    #: Canonical spec string, e.g. ``posit32`` or ``fixedposit(16,es=2,r=3)``.
    name: str
    #: Width of one stored value in bits.
    nbits: int

    def __init__(self, backend: str | None = None) -> None:
        from repro.formats.backends import make_backend

        self._backend = make_backend(self, backend)
        self._round_trip_cache: OrderedDict = OrderedDict()
        self._encode_once_cache: OrderedDict = OrderedDict()

    # -- raw codec operations (implemented by concrete formats) ----------

    @abc.abstractmethod
    def encode_raw(self, values) -> np.ndarray:
        """Store float values: the bit patterns, as unsigned ints."""

    @abc.abstractmethod
    def decode_raw(self, bits) -> np.ndarray:
        """Load bit patterns back into float64 values."""

    @abc.abstractmethod
    def classify_raw(self, bits, bit_index: int) -> np.ndarray:
        """Per-element field id of ``bit_index`` (format-specific enum)."""

    def regime_raw(self, bits) -> np.ndarray:
        """Regime size k per element; zeros for systems without a regime."""
        return np.zeros(np.shape(np.asarray(bits)), dtype=np.int64)

    def classify_rows_raw(self, bits_rows, bit_indices) -> np.ndarray:
        """Field id of bit ``bit_indices[i]`` for every pattern in row i.

        Default: one ``classify_raw`` sweep per row.  Formats whose
        classification vectorizes over the bit axis override this with a
        single whole-block pass (posit: one field decomposition; IEEE:
        per-row constants).
        """
        rows = np.asarray(bits_rows)
        out = np.empty(rows.shape, dtype=np.int64)
        for i, bit in enumerate(np.asarray(bit_indices).tolist()):
            out[i] = self.classify_raw(rows[i], int(bit))
        return out

    def classify_many_raw(self, bits, bit_indices) -> np.ndarray:
        """Field ids of the *same* patterns at many bits: ``(B, *shape)``."""
        array = np.asarray(bits)
        out = np.empty((len(bit_indices),) + array.shape, dtype=np.int64)
        for i, bit in enumerate(np.asarray(bit_indices).tolist()):
            out[i] = self.classify_raw(array, int(bit))
        return out

    @abc.abstractmethod
    def field_label(self, field_id: int) -> str:
        """Human-readable name of a field id."""

    # -- public protocol (backend-dispatched) ----------------------------

    @property
    def dtype(self) -> np.dtype:
        """NumPy unsigned dtype wide enough to store a bit pattern."""
        from repro.bitops import uint_dtype_for

        return uint_dtype_for(self.nbits)

    @property
    def spec(self) -> str:
        """The spec string this format rehydrates from (== ``name``)."""
        return self.name

    @property
    def backend_name(self) -> str:
        """Which codec backend serves this instance (``direct``/``lut``)."""
        return self._backend.backend_name

    def to_bits(self, values) -> np.ndarray:
        """Store float values: returns the bit patterns (unsigned ints)."""
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return self._backend.to_bits(values)
        with telemetry.span("formats.encode"):
            bits = self._backend.to_bits(values)
        telemetry.count("formats.encode.values", np.size(bits))
        return bits

    def from_bits(self, bits) -> np.ndarray:
        """Load bit patterns back into float64 values."""
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return self._backend.from_bits(bits)
        with telemetry.span("formats.decode"):
            values = self._backend.from_bits(bits)
        telemetry.count("formats.decode.values", np.size(values))
        return values

    def classify_bits(self, bits, bit_index: int) -> np.ndarray:
        """Per-element field id of ``bit_index`` (format-specific enum)."""
        if not 0 <= bit_index < self.nbits:
            raise ValueError(f"bit_index must be in [0, {self.nbits}), got {bit_index}")
        return self._backend.classify_bits(bits, bit_index)

    def regime_sizes(self, bits) -> np.ndarray:
        """Regime size k per element; zeros for systems without a regime."""
        return self._backend.regime_sizes(bits)

    # -- batch protocol (encode-once campaign pipeline) -------------------

    def encode_once(self, values) -> np.ndarray:
        """``to_bits`` memoized on the array fingerprint.

        The campaign pipeline stores each field's dataset exactly once
        and reuses the patterns across every bit's trials; repeated
        calls (resume, per-experiment re-runs, fork workers warming
        from the parent) hit the cache instead of re-encoding.
        ``round_trip`` pre-seeds this cache with the patterns of the
        stored dataset it returns (store-then-load is idempotent, so
        re-encoding its output must reproduce the same patterns), which
        makes the campaign's encode of the round-tripped field free.
        """
        telemetry = get_telemetry()
        array = np.ascontiguousarray(values)
        key = _array_fingerprint(array)
        cached = self._encode_once_cache.get(key)
        if cached is not None:
            self._encode_once_cache.move_to_end(key)
            if telemetry.enabled:
                telemetry.count("formats.encode_once.cache_hits")
            return cached.copy()
        if telemetry.enabled:
            telemetry.count("formats.encode_once.cache_misses")
        bits = self.to_bits(array)
        self._encode_once_cache[key] = bits
        while len(self._encode_once_cache) > _ENCODE_ONCE_CACHE_SIZE:
            self._encode_once_cache.popitem(last=False)
        return bits.copy()

    def decode_flips(self, bits, bit_indices) -> np.ndarray:
        """Decode ``bits`` with bit ``bit_indices[i]`` flipped in row i.

        A 1-D ``bits`` array broadcasts against the bit axis (result
        shape ``(len(bit_indices), bits.size)``); an array with a
        leading row axis is flipped row-wise.
        """
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return self._backend.decode_flips(bits, bit_indices)
        with telemetry.span("formats.decode"):
            values = self._backend.decode_flips(bits, bit_indices)
        telemetry.count("formats.decode.values", np.size(values))
        return values

    def decode_masked(self, bits, masks) -> np.ndarray:
        """Decode ``bits`` under arbitrary XOR / set / clear fault masks.

        The multi-bit generalization of :meth:`decode_flips`: ``masks``
        is a :class:`repro.inject.faults.FaultMasks` whose members are
        scalars or per-trial arrays broadcastable to ``bits``.
        """
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return self._backend.decode_masked(bits, masks)
        with telemetry.span("formats.decode"):
            values = self._backend.decode_masked(bits, masks)
        telemetry.count("formats.decode.values", np.size(values))
        return values

    def classify_bits_batch(self, bits_rows, bit_indices) -> np.ndarray:
        """Field id of bit ``bit_indices[i]`` for every pattern in row i."""
        for bit in np.asarray(bit_indices).reshape(-1):
            if not 0 <= bit < self.nbits:
                raise ValueError(
                    f"bit indices must be in [0, {self.nbits}), got {bit}"
                )
        return self._backend.classify_rows(bits_rows, bit_indices)

    def round_trip(self, values) -> np.ndarray:
        """Store-then-load: the representable value of each input.

        Memoized on an array fingerprint (dtype, shape, content hash):
        the campaign engine round-trips the same dataset for the
        baseline, the conversion report, and again per experiment, and
        the codec is the expensive step, not the hashing.
        """
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return self._round_trip(values)
        with telemetry.span("formats.round_trip"):
            return self._round_trip(values, telemetry)

    def _round_trip(self, values, telemetry=None) -> np.ndarray:
        array = np.ascontiguousarray(values)
        key = _array_fingerprint(array)
        cached = self._round_trip_cache.get(key)
        if cached is not None:
            self._round_trip_cache.move_to_end(key)
            if telemetry is not None:
                telemetry.count("formats.round_trip.cache_hits")
            return cached.copy()
        if telemetry is not None:
            telemetry.count("formats.round_trip.cache_misses")
        bits = self.to_bits(array)
        result = self.from_bits(bits)
        self._round_trip_cache[key] = result
        # Store-then-load is idempotent, so the stored dataset's patterns
        # are exactly `bits`: seed the encode-once memo so the campaign
        # pipeline's encode of the round-tripped field is a cache hit.
        self._encode_once_cache[_array_fingerprint(np.ascontiguousarray(result))] = bits
        while len(self._encode_once_cache) > _ENCODE_ONCE_CACHE_SIZE:
            self._encode_once_cache.popitem(last=False)
        while len(self._round_trip_cache) > _ROUND_TRIP_CACHE_SIZE:
            self._round_trip_cache.popitem(last=False)
        return result.copy()

    def layout_string(self, pattern: int) -> str:
        """Render a pattern with field separators (``0|10|01|...``)."""
        return format(int(pattern) & ((1 << self.nbits) - 1), f"0{self.nbits}b")

    def describe(self) -> str:
        """Single-line human-readable summary of the format."""
        return f"{self.name} ({self.nbits} bits)"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<NumberFormat {self.name} backend={self.backend_name}>"
