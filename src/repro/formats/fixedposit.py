"""Fixed-posit number formats (Gohil et al., 2021).

The fixed-posit representation keeps the posit value function but fixes
the regime field to a constant width ``r``, trading tapered precision
for hardware-friendly static field boundaries::

     S | R0 .. R(r-1) | E0 .. E(es-1) | F0 F1 ...
    sign  regime (r bits)  exponent      fraction (nbits-1-r-es bits)

The regime field stores the regime value ``k`` directly as an ``r``-bit
biased integer (excess ``2**(r-1)``; no run-length encoding, no
terminator), so ``k`` ranges over ``[-2**(r-1), 2**(r-1) - 1]`` and the
represented magnitude is ``(1 + f) * 2**(k * 2**es + e)`` — exactly the
posit scale law with the regime's reach clipped by the field width.
Negative values are the two's complement of the whole word, zero is the
all-zero pattern and NaR is the sign bit alone, all as in standard
posits; rounding is round-to-nearest-even with posit-style saturation
(never to zero, never to NaR).  Reserving the all-zero pattern for zero
steals the code point of ``2**min_scale``, so the smallest positive
value (``minpos``) is pattern 1: ``(1 + 2**-F) * 2**min_scale``.

Field classification is static (like IEEE) but uses the posit field
vocabulary, so campaign analysis compares fixed-posit regime hits
against true-posit regime hits directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.bitops import uint_dtype_for
from repro.formats.base import NumberFormat
from repro.posit.fields import PositField


@dataclass(frozen=True)
class FixedPositConfig:
    """Immutable description of a fixed-posit format.

    Parameters
    ----------
    nbits:
        Total width in bits.
    es:
        Exponent field width (posit standard uses 2).
    r:
        Regime field width; the regime value is an ``r``-bit
        two's-complement integer.
    """

    nbits: int
    es: int = 2
    r: int = 2

    def __post_init__(self) -> None:
        if not 4 <= self.nbits <= 64:
            raise ValueError(f"fixed-posit nbits must be in [4, 64], got {self.nbits}")
        if not 0 <= self.es <= 4:
            raise ValueError(f"fixed-posit es must be in [0, 4], got {self.es}")
        if not 1 <= self.r <= 8:
            raise ValueError(f"fixed-posit r must be in [1, 8], got {self.r}")
        if self.fraction_bits < 1:
            raise ValueError(
                f"fixed-posit({self.nbits},es={self.es},r={self.r}) leaves "
                f"{self.fraction_bits} fraction bits; need at least 1"
            )
        if self.max_scale > 1023 or self.min_scale < -1022:
            raise ValueError(
                "fixed-posit scale range 2^[{}, {}] exceeds what float64 "
                "represents exactly".format(self.min_scale, self.max_scale)
            )

    @property
    def fraction_bits(self) -> int:
        return self.nbits - 1 - self.r - self.es

    @property
    def k_max(self) -> int:
        return (1 << (self.r - 1)) - 1

    @property
    def k_min(self) -> int:
        return -(1 << (self.r - 1))

    @property
    def max_scale(self) -> int:
        """Largest power-of-two scale: k_max regime with all-ones exponent."""
        return self.k_max * (1 << self.es) + (1 << self.es) - 1

    @property
    def min_scale(self) -> int:
        """Smallest power-of-two scale: k_min regime with zero exponent."""
        return self.k_min * (1 << self.es)

    @property
    def mask(self) -> int:
        return (1 << self.nbits) - 1

    @property
    def sign_mask(self) -> int:
        return 1 << (self.nbits - 1)

    @property
    def nar_pattern(self) -> int:
        return self.sign_mask

    @property
    def dtype(self) -> np.dtype:
        return uint_dtype_for(self.nbits)

    def describe(self) -> str:
        return (
            f"fixedposit{self.nbits} (es={self.es}, r={self.r}, "
            f"{self.fraction_bits} fraction bits, scale 2^[{self.min_scale}, "
            f"{self.max_scale}])"
        )


def fixedposit_spec_name(config: FixedPositConfig) -> str:
    """Canonical spec string of a fixed-posit configuration."""
    return f"fixedposit({config.nbits},es={config.es},r={config.r})"


class FixedPositTarget(NumberFormat):
    """Fixed-posit storage with static field boundaries."""

    def __init__(self, config: FixedPositConfig, backend: str | None = None) -> None:
        self.config = config
        self.name = fixedposit_spec_name(config)
        self.nbits = config.nbits
        super().__init__(backend)

    @property
    def dtype(self) -> np.dtype:
        return self.config.dtype

    @cached_property
    def _maxpos_pattern(self) -> int:
        # Biased regime all ones, exponent all ones, fraction all ones.
        return (1 << (self.config.nbits - 1)) - 1

    @cached_property
    def _minpos_pattern(self) -> int:
        # Biased regime 0 (k = k_min), zero exponent, fraction 1: the
        # all-zero pattern is reserved for zero.
        return 1

    def encode_raw(self, values) -> np.ndarray:
        c = self.config
        x = np.asarray(values, dtype=np.float64)
        fbits = c.fraction_bits
        a = np.abs(x)
        finite = np.isfinite(x) & (a != 0)

        _, exp2 = np.frexp(np.where(finite, a, 1.0))
        scale = exp2.astype(np.int64) - 1
        # Integer significand in [2**fbits, 2**(fbits+1)]; the top value
        # carries into the scale.
        q = np.rint(np.ldexp(np.where(finite, a, 1.0), fbits - scale))
        carry = q >= 2.0 ** (fbits + 1)
        scale = scale + carry.astype(np.int64)
        q = np.where(carry, 2.0**fbits, q)
        frac = (q - 2.0**fbits).astype(np.uint64)

        k = np.floor_divide(scale, 1 << c.es)
        e = (scale - k * (1 << c.es)).astype(np.uint64)
        k_field = ((k - c.k_min) & ((1 << c.r) - 1)).astype(np.uint64)
        pattern = (
            (k_field << np.uint64(c.es + fbits)) | (e << np.uint64(fbits)) | frac
        )
        # Posit-style saturation: overflow to maxpos, underflow to minpos
        # (never to zero, never to NaR).  minpos also absorbs the stolen
        # pattern-0 code point (2**min_scale rounds up to pattern 1).
        pattern = np.where(scale > c.max_scale, np.uint64(self._maxpos_pattern), pattern)
        pattern = np.where(scale < c.min_scale, np.uint64(self._minpos_pattern), pattern)
        pattern = np.maximum(pattern, np.uint64(self._minpos_pattern))
        # Negative values are the two's complement of the whole word.
        negative = np.signbit(x) & finite
        twos = (np.uint64(c.mask) - pattern + np.uint64(1)) & np.uint64(c.mask)
        pattern = np.where(negative, twos, pattern)
        pattern = np.where(finite, pattern, np.uint64(c.nar_pattern))
        pattern = np.where(a == 0, np.uint64(0), pattern)
        return pattern.astype(c.dtype)

    def decode_raw(self, bits) -> np.ndarray:
        c = self.config
        fbits = c.fraction_bits
        work = np.asarray(bits).astype(np.uint64, copy=False) & np.uint64(c.mask)
        sign = (work >> np.uint64(c.nbits - 1)) & np.uint64(1)
        magnitude = np.where(
            sign == 1, (np.uint64(c.mask) - work + np.uint64(1)) & np.uint64(c.mask), work
        )
        k_field = ((magnitude >> np.uint64(c.es + fbits)) & np.uint64((1 << c.r) - 1)).astype(
            np.int64
        )
        k = k_field + c.k_min
        e = ((magnitude >> np.uint64(fbits)) & np.uint64((1 << c.es) - 1)).astype(np.int64)
        frac = (magnitude & np.uint64((1 << fbits) - 1)).astype(np.float64)

        value = np.ldexp(1.0 + frac * 2.0**-fbits, k * (1 << c.es) + e)
        value = np.where(sign == 1, -value, value)
        value = np.where(work == np.uint64(0), 0.0, value)
        value = np.where(work == np.uint64(c.nar_pattern), np.nan, value)
        return value

    def classify_raw(self, bits, bit_index: int) -> np.ndarray:
        c = self.config
        if bit_index == c.nbits - 1:
            field = PositField.SIGN
        elif bit_index >= c.es + c.fraction_bits:
            field = PositField.REGIME
        elif bit_index >= c.fraction_bits:
            field = PositField.EXPONENT
        else:
            field = PositField.FRACTION
        return np.full(np.shape(np.asarray(bits)), int(field), dtype=np.int64)

    def regime_raw(self, bits) -> np.ndarray:
        """The regime field width is fixed: every element reports ``r``."""
        return np.full(np.shape(np.asarray(bits)), self.config.r, dtype=np.int64)

    def field_label(self, field_id: int) -> str:
        return PositField(field_id).name

    def layout_string(self, pattern: int) -> str:
        c = self.config
        bit_string = format(int(pattern) & c.mask, f"0{c.nbits}b")
        parts = [bit_string[0], bit_string[1 : 1 + c.r]]
        if c.es:
            parts.append(bit_string[1 + c.r : 1 + c.r + c.es])
        parts.append(bit_string[1 + c.r + c.es :])
        return "|".join(part for part in parts if part)

    def describe(self) -> str:
        return self.config.describe()

    @property
    def field_enum(self):
        return PositField
