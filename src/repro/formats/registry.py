"""The format registry: names and specs resolve to shared instances.

The registry is the single lookup point for every consumer — injection
targets, the CLI, experiments, application kernels and pool workers all
go through :func:`resolve` (:func:`get_format` is the underlying
registry lookup it wraps).  Resolution order:

1. explicitly registered names (:func:`register_format`), letting
   projects install formats outside the spec grammar;
2. the spec grammar (:mod:`repro.formats.spec`), which covers every
   parameterized posit / IEEE / fixed-posit layout.

Instances are cached per ``(canonical name, backend)``, which matters
beyond speed: LUT tables and round-trip memos live on the instance, so
repeated lookups of ``"posit16"`` share one set of tables.
"""

from __future__ import annotations

from typing import Callable

from repro.formats.base import NumberFormat
from repro.formats.spec import FormatSpecError, normalize_spec, parse_spec

#: The paper's formats plus the future-work widths: always registered,
#: listed by :func:`available_formats`.
DEFAULT_FORMATS = (
    "bfloat16",
    "ieee16",
    "ieee32",
    "ieee64",
    "posit8",
    "posit16",
    "posit32",
    "posit64",
)

_FACTORIES: dict[str, Callable[[], NumberFormat]] = {}
_INSTANCES: dict[tuple[str, str | None], NumberFormat] = {}


def register_format(
    name: str, factory: Callable[[], NumberFormat], *, listed: bool = True
) -> None:
    """Register a named format factory.

    ``factory`` is called (lazily, once per backend) to build the
    instance; its result's ``name`` need not equal ``name``, which acts
    as an alias.  ``listed=False`` registers a resolvable alias that
    :func:`available_formats` does not advertise.
    """
    key = normalize_spec(name)
    if not key:
        raise ValueError("format name must be non-empty")
    _FACTORIES[key] = factory
    if not listed:
        _UNLISTED.add(key)
    _INSTANCES.clear()


_UNLISTED: set[str] = set()


def get_format(spec: str, backend: str | None = None) -> NumberFormat:
    """Resolve a name or spec string to a (cached) format instance.

    Raises :class:`FormatSpecError` when the string neither names a
    registered format nor parses under the spec grammar.
    """
    if isinstance(spec, NumberFormat):
        return spec
    key = normalize_spec(spec)
    cached = _INSTANCES.get((key, backend))
    if cached is not None:
        return cached
    factory = _FACTORIES.get(key)
    if factory is not None:
        instance = factory()
        if backend is not None and instance.backend_name != backend:
            from repro.formats.backends import make_backend

            instance._backend = make_backend(instance, backend)
    else:
        instance = parse_spec(key, backend)
    # Cache under both the requested and the canonical key so
    # get_format("binary(8,23)") and get_format("ieee32") share tables —
    # preferring an instance already cached under the canonical name.
    canonical = normalize_spec(instance.name)
    instance = _INSTANCES.setdefault((canonical, backend), instance)
    _INSTANCES[(key, backend)] = instance
    return instance


def resolve(spec: str | NumberFormat, *, backend: str | None = None) -> NumberFormat:
    """Resolve a name, spec string, or format instance to a format.

    *The* entry point for picking a format and its codec — every
    consumer (injection engine, runner, CLI, apps, tests) should call
    this and nothing else.  ``spec`` is a registered name, any spec
    grammar string (``posit32``, ``binary(8,23)``,
    ``fixedposit(16,es=2,r=3)``), or an existing instance (returned
    untouched).  ``backend`` picks the codec explicitly
    (``direct``/``lut``/``composed``/``numba``); when omitted, the
    ``REPRO_FORMAT_BACKEND`` environment variable applies, and after
    that the automatic policy (LUT tables for formats narrow enough to
    tabulate, direct codec otherwise) — precedence and fallback rules
    live in :func:`repro.formats.backends.resolve_backend_name`.

    Instances are cached per ``(canonical name, backend)``, so repeated
    lookups share codec tables and memos.  Raises
    :class:`FormatSpecError` for anything unresolvable and
    :class:`ValueError` for an unknown or incompatible backend.
    """
    return get_format(spec, backend)


def available_formats() -> list[str]:
    """All advertised format names: defaults plus registered ones."""
    names = set(DEFAULT_FORMATS)
    names.update(key for key in _FACTORIES if key not in _UNLISTED)
    return sorted(names)


def format_known(spec: str) -> bool:
    """Whether ``spec`` resolves (registered name or valid spec string)."""
    try:
        get_format(spec)
    except (FormatSpecError, ValueError):
        return False
    return True
