"""Optional numba-compiled direct codec.

Selecting ``backend="numba"`` (or ``REPRO_FORMAT_BACKEND=numba``) routes
``from_bits`` through an njit-compiled scalar loop over the posit decode
recurrence — the same arithmetic as :mod:`repro.posit.decode`, but
without the ~10 intermediate arrays the vectorized form materializes.
Everything else (encode, classification, non-posit formats) stays on the
direct vectorized codec, which is already a single fused pass.

numba is an *optional* dependency: :func:`numba_available` probes for it
without importing, and the backend resolver falls back to ``direct``
when it is missing (warning on an explicit per-instance request, silent
on an environment-level one), so no campaign ever fails because of an
absent JIT.  When numba *is* present the conformance oracle gates the
compiled decode bit-exactly against the reference codec like every
other backend.
"""

from __future__ import annotations

import importlib.util

import numpy as np

from repro.formats.backends import DirectBackend

_AVAILABLE: bool | None = None

#: Compiled posit decode kernels keyed by (nbits, es).
_KERNELS: dict = {}


def numba_available() -> bool:
    """Whether the numba JIT can be used in this process."""
    global _AVAILABLE
    if _AVAILABLE is None:
        _AVAILABLE = importlib.util.find_spec("numba") is not None
    return _AVAILABLE


def _posit_decode_kernel():
    """Build (once) the njit scalar posit decoder.

    Mirrors :func:`repro.posit.decode.decode` exactly: the mantissa is
    folded into one integer so a single ldexp is the only rounding step,
    keeping the compiled path bit-identical to the vectorized one.
    """
    if "posit" in _KERNELS:
        return _KERNELS["posit"]
    import math

    import numba

    @numba.njit(cache=True)
    def kernel(bits, out, nbits, es, useed_log2, mask, zero_pattern, nar_pattern):
        body_width = nbits - 1
        body_mask = mask >> 1
        for i in range(bits.shape[0]):
            p = np.int64(bits[i]) & mask
            if p == zero_pattern:
                out[i] = 0.0
                continue
            if p == nar_pattern:
                out[i] = np.nan
                continue
            s = (p >> (nbits - 1)) & 1
            body = p & body_mask
            top = (body >> (body_width - 1)) & 1
            run = 0
            j = body_width - 1
            while j >= 0 and ((body >> j) & 1) == top:
                run += 1
                j -= 1
            has_terminator = 1 if run < body_width else 0
            regime_len = run + has_terminator
            regime = run - 1 if top == 1 else -run
            rem = body_width - regime_len
            e_avail = rem if rem < es else es
            if e_avail < 0:
                e_avail = 0
            shift_down = rem - e_avail
            if shift_down < 0:
                shift_down = 0
            exponent = 0
            if e_avail > 0:
                raw_exp = (body >> shift_down) & ((1 << e_avail) - 1)
                exponent = raw_exp << (es - e_avail)
            m = rem - es
            if m < 0:
                m = 0
            fraction = body & ((1 << m) - 1) if m > 0 else 0
            if s == 0:
                combined = (1 << m) + fraction
                sign_factor = 1.0
            else:
                combined = (1 << (m + 1)) - fraction
                sign_factor = -1.0
            scale = (1 - 2 * s) * (useed_log2 * regime + exponent + s)
            out[i] = sign_factor * math.ldexp(float(combined), scale - m)

    _KERNELS["posit"] = kernel
    return kernel


class NumbaBackend(DirectBackend):
    """Direct codec with an njit-compiled posit ``from_bits`` loop."""

    backend_name = "numba"

    def __init__(self, fmt) -> None:
        if not numba_available():
            raise RuntimeError(
                "numba backend constructed but numba is not importable; "
                "resolve_backend_name should have fallen back to direct"
            )
        super().__init__(fmt)
        # Only posits carry a config with the decode recurrence; other
        # formats keep the vectorized direct decode (already one pass).
        # The kernel runs signed-int64 arithmetic, so 64-bit patterns
        # (whose mask does not fit int64) also stay on the direct path.
        config = getattr(fmt, "config", None)
        if hasattr(config, "useed_log2") and config.nbits < 64:
            self._posit_config = config
        else:
            self._posit_config = None

    def from_bits(self, bits) -> np.ndarray:
        if self._posit_config is None:
            return super().from_bits(bits)
        config = self._posit_config
        arr = np.asarray(bits)
        flat = np.ascontiguousarray(arr.reshape(-1)).astype(np.int64)
        out = np.empty(flat.shape, dtype=np.float64)
        _posit_decode_kernel()(
            flat,
            out,
            config.nbits,
            config.es,
            config.useed_log2,
            config.mask,
            config.zero_pattern,
            config.nar_pattern,
        )
        return out.reshape(arr.shape)
