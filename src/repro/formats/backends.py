"""Pluggable codec backends for :class:`~repro.formats.base.NumberFormat`.

Two backends serve the protocol's hot operations:

``direct``
    Calls the format's raw vectorized encode/decode/classify on every
    request.  Always available, any width.

``lut``
    For formats of at most 16 bits, every operation that maps *patterns*
    to answers is a table gather: ``from_bits`` indexes a precomputed
    float64 value table (the dominant cost of a campaign — every trial
    decodes a faulty pattern), ``classify_bits`` and ``regime_sizes``
    index per-bit field tables.  ``to_bits`` resolves representable
    inputs by binary search over the sorted value lattice and delegates
    the residual elements (inexact values, zeros, non-finite) to the
    direct codec, so its rounding semantics are *identical* to
    ``direct`` by construction — the exhaustive equivalence tests assert
    bit-identity over every pattern, not approximate agreement.

Tables are built lazily on first use (a 16-bit format costs one
exhaustive decode plus ~nbits classify sweeps, ~1 MiB resident), so
importing the registry stays cheap.

Selection is automatic — ``lut`` whenever the width permits — and can
be forced per process with ``REPRO_FORMAT_BACKEND=direct|lut|auto`` or
per instance via ``get_format(spec, backend=...)``.
"""

from __future__ import annotations

import os

import numpy as np

from repro.telemetry import get_telemetry

#: Widest format the LUT backend will tabulate (2**16 entries).
LUT_MAX_BITS = 16

#: Environment variable overriding automatic backend selection.
BACKEND_ENV_VAR = "REPRO_FORMAT_BACKEND"

_BACKEND_CHOICES = ("auto", "direct", "lut")


def resolve_backend_name(fmt, requested: str | None) -> str:
    """Decide which backend a format instance should use.

    Explicit ``requested`` wins, then the ``REPRO_FORMAT_BACKEND``
    environment variable, then ``auto`` (LUT for every format narrow
    enough to tabulate).  An explicit ``lut`` request for a too-wide
    format is an error; an environment-level ``lut`` quietly falls back
    to ``direct`` so one process-wide setting never breaks 32/64-bit
    campaigns.
    """
    choice = requested if requested is not None else os.environ.get(BACKEND_ENV_VAR, "auto")
    choice = choice.strip().lower()
    if choice not in _BACKEND_CHOICES:
        raise ValueError(
            f"unknown format backend {choice!r}; choose from {', '.join(_BACKEND_CHOICES)}"
        )
    if choice == "lut" and fmt.nbits > LUT_MAX_BITS:
        if requested is None:
            return "direct"
        raise ValueError(
            f"lut backend supports formats up to {LUT_MAX_BITS} bits, "
            f"but {fmt.name} has {fmt.nbits}"
        )
    if choice == "auto":
        return "lut" if fmt.nbits <= LUT_MAX_BITS else "direct"
    return choice


def make_backend(fmt, requested: str | None = None):
    """Build the backend instance serving ``fmt``."""
    name = resolve_backend_name(fmt, requested)
    return LUTBackend(fmt) if name == "lut" else DirectBackend(fmt)


class DirectBackend:
    """Pass-through backend: every call runs the raw vectorized codec."""

    backend_name = "direct"

    def __init__(self, fmt) -> None:
        self._fmt = fmt

    def to_bits(self, values) -> np.ndarray:
        return self._fmt.encode_raw(values)

    def from_bits(self, bits) -> np.ndarray:
        return self._fmt.decode_raw(bits)

    def classify_bits(self, bits, bit_index: int) -> np.ndarray:
        return self._fmt.classify_raw(bits, bit_index)

    def regime_sizes(self, bits) -> np.ndarray:
        return self._fmt.regime_raw(bits)


class LUTBackend:
    """Exhaustive-table backend for formats of at most 16 bits."""

    backend_name = "lut"

    def __init__(self, fmt) -> None:
        if fmt.nbits > LUT_MAX_BITS:
            raise ValueError(
                f"lut backend supports formats up to {LUT_MAX_BITS} bits, "
                f"but {fmt.name} has {fmt.nbits}"
            )
        self._fmt = fmt
        self._mask = (1 << fmt.nbits) - 1
        self._values: np.ndarray | None = None
        self._sorted_values: np.ndarray | None = None
        self._sorted_patterns: np.ndarray | None = None
        self._classify_tables: list[np.ndarray | None] = [None] * fmt.nbits
        self._regime_table: np.ndarray | None = None

    # -- table construction (lazy) ---------------------------------------

    def _all_patterns(self) -> np.ndarray:
        return np.arange(1 << self._fmt.nbits, dtype=np.uint64)

    def _build(self, kind: str, builder):
        """Run one lazy table build under the LUT-build telemetry span."""
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return builder()
        with telemetry.span("formats.lut.build"):
            table = builder()
        telemetry.count("formats.lut.tables_built")
        telemetry.count(f"formats.lut.tables_built.{kind}")
        return table

    def _ensure_values(self) -> np.ndarray:
        if self._values is None:
            self._values = self._build(
                "values",
                lambda: np.asarray(
                    self._fmt.decode_raw(self._all_patterns()), dtype=np.float64
                ),
            )
        return self._values

    def _ensure_sorted(self) -> None:
        if self._sorted_values is not None:
            return
        values = self._ensure_values()

        def build():
            finite = np.nonzero(np.isfinite(values) & (values != 0))[0]
            order = np.argsort(values[finite], kind="stable")
            return values[finite][order], finite[order].astype(self._fmt.dtype)

        self._sorted_values, self._sorted_patterns = self._build("sorted", build)

    def _ensure_classify(self, bit_index: int) -> np.ndarray:
        table = self._classify_tables[bit_index]
        if table is None:
            table = self._build(
                "classify",
                lambda: np.asarray(
                    self._fmt.classify_raw(self._all_patterns(), bit_index),
                    dtype=np.int64,
                ),
            )
            self._classify_tables[bit_index] = table
        return table

    def _ensure_regime(self) -> np.ndarray:
        if self._regime_table is None:
            self._regime_table = self._build(
                "regime",
                lambda: np.asarray(
                    self._fmt.regime_raw(self._all_patterns()), dtype=np.int64
                ),
            )
        return self._regime_table

    def _indices(self, bits) -> np.ndarray:
        return np.asarray(bits).astype(np.int64) & np.int64(self._mask)

    # -- backend protocol ------------------------------------------------

    def from_bits(self, bits) -> np.ndarray:
        return self._ensure_values()[self._indices(bits)]

    def to_bits(self, values) -> np.ndarray:
        self._ensure_sorted()
        array = np.asarray(values, dtype=np.float64)
        flat = array.reshape(-1)
        idx = np.searchsorted(self._sorted_values, flat)
        idx = np.minimum(idx, self._sorted_values.size - 1)
        # Exactly representable, finite, nonzero values resolve by table;
        # everything else (values needing rounding, zeros with a sign,
        # NaN/inf saturation) delegates to the direct codec so rounding
        # semantics cannot drift between backends.
        exact = (self._sorted_values[idx] == flat) & np.isfinite(flat) & (flat != 0)
        out = np.empty(flat.shape, dtype=self._fmt.dtype)
        out[exact] = self._sorted_patterns[idx[exact]]
        if not np.all(exact):
            rest = ~exact
            out[rest] = np.asarray(
                self._fmt.encode_raw(flat[rest]), dtype=self._fmt.dtype
            )
        return out.reshape(array.shape)

    def classify_bits(self, bits, bit_index: int) -> np.ndarray:
        return self._ensure_classify(bit_index)[self._indices(bits)]

    def regime_sizes(self, bits) -> np.ndarray:
        return self._ensure_regime()[self._indices(bits)]
