"""Pluggable codec backends for :class:`~repro.formats.base.NumberFormat`.

Four backends serve the protocol's hot operations:

``direct``
    Calls the format's raw vectorized encode/decode/classify on every
    request.  Always available, any width.

``lut``
    For formats of at most 16 bits, every operation that maps *patterns*
    to answers is a table gather: ``from_bits`` indexes a precomputed
    float64 value table (the dominant cost of a campaign — every trial
    decodes a faulty pattern), ``classify_bits`` and ``regime_sizes``
    index per-bit field tables.  ``to_bits`` resolves representable
    inputs by binary search over the sorted value lattice and delegates
    the residual elements (inexact values, zeros, non-finite) to the
    direct codec, so its rounding semantics are *identical* to
    ``direct`` by construction — the exhaustive equivalence tests assert
    bit-identity over every pattern, not approximate agreement.

``composed``
    Table decoding for widths up to 32 bits by composing two 16-bit
    gathers, with per-row bit-exactness proved at build time (see
    :mod:`repro.formats.composed`).

``numba``
    Optional JIT-compiled direct codec (see :mod:`repro.formats.jit`);
    selecting it when numba is not installed falls back to ``direct``.

Tables are built lazily on first use (a 16-bit format costs one
exhaustive decode plus ~nbits classify sweeps, ~1 MiB resident), so
importing the registry stays cheap.

Selection is automatic — ``lut`` whenever the width permits — and can
be forced per process with ``REPRO_FORMAT_BACKEND`` or per instance via
``repro.formats.resolve(spec, backend=...)``.  The batched campaign
pipeline uses its own default policy (:func:`batch_backend_name`) which
additionally picks ``composed`` for 17–32-bit formats.

Every backend also implements the *batch* half of the codec surface
consumed by the encode-once campaign pipeline
(:class:`repro.inject.trial.FieldPipeline`):

``decode_flips(bits, bit_indices)``
    Decode ``bits`` with bit ``bit_indices[i]`` flipped.  A 1-D ``bits``
    array broadcasts against the bit axis (result ``(B, N)``); a 2-D
    ``(B, T)`` array is flipped row-wise (row ``i`` at bit
    ``bit_indices[i]``).

``classify_rows(bits_rows, bit_indices)``
    Field id of bit ``bit_indices[i]`` for every pattern in row ``i``.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

from repro.telemetry import get_telemetry

#: Widest format the LUT backend will tabulate (2**16 entries).
LUT_MAX_BITS = 16

#: Environment variable overriding automatic backend selection.
BACKEND_ENV_VAR = "REPRO_FORMAT_BACKEND"

_BACKEND_CHOICES = ("auto", "direct", "lut", "composed", "numba")


def flip_patterns(bits, bit_indices, dtype) -> np.ndarray:
    """XOR one single-bit mask per row into ``bits``.

    1-D ``bits`` broadcasts to ``(len(bit_indices), bits.size)``; an
    array with a leading row axis is flipped row-wise.
    """
    arr = np.asarray(bits)
    idx = np.asarray(bit_indices, dtype=np.int64)
    one = np.ones((), dtype=dtype)
    masks = np.left_shift(one, idx.astype(dtype))
    if arr.ndim <= 1:
        return arr ^ masks[:, None]
    return arr ^ masks.reshape((idx.size,) + (1,) * (arr.ndim - 1))


def resolve_backend_name(fmt, requested: str | None) -> str:
    """Decide which backend a format instance should use.

    Explicit ``requested`` wins, then the ``REPRO_FORMAT_BACKEND``
    environment variable, then ``auto`` (LUT for every format narrow
    enough to tabulate).  An explicit ``lut``/``composed`` request for a
    too-wide format is an error; the same choice at environment level
    quietly falls back to ``direct`` so one process-wide setting never
    breaks wider campaigns.  ``numba`` without numba installed warns on
    an explicit request and silently degrades on an environment-level
    one — either way the process keeps running on ``direct``.
    """
    from repro.formats.composed import COMPOSED_MAX_BITS

    choice = requested if requested is not None else os.environ.get(BACKEND_ENV_VAR, "auto")
    choice = choice.strip().lower()
    if choice not in _BACKEND_CHOICES:
        raise ValueError(
            f"unknown format backend {choice!r}; choose from {', '.join(_BACKEND_CHOICES)}"
        )
    if choice == "lut" and fmt.nbits > LUT_MAX_BITS:
        if requested is None:
            return "direct"
        raise ValueError(
            f"lut backend supports formats up to {LUT_MAX_BITS} bits, "
            f"but {fmt.name} has {fmt.nbits}"
        )
    if choice == "composed" and fmt.nbits > COMPOSED_MAX_BITS:
        if requested is None:
            return "direct"
        raise ValueError(
            f"composed backend supports formats up to {COMPOSED_MAX_BITS} bits, "
            f"but {fmt.name} has {fmt.nbits}"
        )
    if choice == "numba":
        from repro.formats.jit import numba_available

        if not numba_available():
            if requested is not None:
                warnings.warn(
                    "numba backend requested but numba is not installed; "
                    "falling back to the direct codec",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return "direct"
    if choice == "auto":
        return "lut" if fmt.nbits <= LUT_MAX_BITS else "direct"
    return choice


def batch_backend_name(fmt) -> str:
    """Default backend for the batched campaign pipeline.

    Unlike the scalar ``auto`` policy (which never changes an existing
    format instance's behavior), the pipeline constructs its own codec
    per field and can afford the composed backend's one-time table
    build, so 17–32-bit formats get ``composed`` by default.  A
    non-``auto`` ``REPRO_FORMAT_BACKEND`` still wins, with the same
    width/availability fallbacks as :func:`resolve_backend_name`.
    """
    env = os.environ.get(BACKEND_ENV_VAR)
    if env is not None and env.strip().lower() != "auto":
        return resolve_backend_name(fmt, None)
    from repro.formats.composed import COMPOSED_MAX_BITS

    if fmt.nbits <= LUT_MAX_BITS:
        return "lut"
    if fmt.nbits <= COMPOSED_MAX_BITS:
        return "composed"
    return "direct"


def make_backend(fmt, requested: str | None = None):
    """Build the backend instance serving ``fmt``."""
    name = resolve_backend_name(fmt, requested)
    if name == "lut":
        return LUTBackend(fmt)
    if name == "composed":
        from repro.formats.composed import ComposedLUTBackend

        return ComposedLUTBackend(fmt)
    if name == "numba":
        from repro.formats.jit import NumbaBackend

        return NumbaBackend(fmt)
    return DirectBackend(fmt)


class CodecBackend:
    """Shared batch operations every codec backend inherits.

    Concrete backends implement the scalar protocol
    (``to_bits``/``from_bits``/``classify_bits``/``regime_sizes``); the
    batch surface below is derived from it and overridden where a
    backend has a faster whole-block form.
    """

    backend_name = "abstract"
    _fmt: object

    def decode_flips(self, bits, bit_indices) -> np.ndarray:
        """Decode ``bits`` with each row's listed bit flipped."""
        return self.from_bits(flip_patterns(bits, bit_indices, self._fmt.dtype))

    def decode_masked(self, bits, masks) -> np.ndarray:
        """Decode ``bits`` under arbitrary XOR / set / clear fault masks.

        ``masks`` is a :class:`repro.inject.faults.FaultMasks`; each mask
        may be a scalar or broadcastable per-trial array, so one call
        serves every registered fault model.  Pure pattern arithmetic
        feeding ``from_bits`` — table backends decode the corrupted
        patterns through the same value gather as ``decode_flips``.
        """
        from repro.inject.faults import apply_masks

        return self.from_bits(apply_masks(np.asarray(bits), masks, self._fmt.nbits))

    def classify_rows(self, bits_rows, bit_indices) -> np.ndarray:
        """Field id of bit ``bit_indices[i]`` for every pattern in row i."""
        rows = np.asarray(bits_rows)
        out = np.empty(rows.shape, dtype=np.int64)
        for i, bit in enumerate(np.asarray(bit_indices).tolist()):
            out[i] = self.classify_bits(rows[i], int(bit))
        return out


class DirectBackend(CodecBackend):
    """Pass-through backend: every call runs the raw vectorized codec."""

    backend_name = "direct"

    def __init__(self, fmt) -> None:
        self._fmt = fmt

    def to_bits(self, values) -> np.ndarray:
        return self._fmt.encode_raw(values)

    def from_bits(self, bits) -> np.ndarray:
        return self._fmt.decode_raw(bits)

    def classify_bits(self, bits, bit_index: int) -> np.ndarray:
        return self._fmt.classify_raw(bits, bit_index)

    def classify_rows(self, bits_rows, bit_indices) -> np.ndarray:
        # Formats with a whole-block classifier (posit: one decompose
        # for the full row block) answer in a single vectorized pass.
        return self._fmt.classify_rows_raw(bits_rows, bit_indices)

    def regime_sizes(self, bits) -> np.ndarray:
        return self._fmt.regime_raw(bits)


class LUTBackend(CodecBackend):
    """Exhaustive-table backend for formats of at most 16 bits."""

    backend_name = "lut"

    def __init__(self, fmt) -> None:
        if fmt.nbits > LUT_MAX_BITS:
            raise ValueError(
                f"lut backend supports formats up to {LUT_MAX_BITS} bits, "
                f"but {fmt.name} has {fmt.nbits}"
            )
        self._fmt = fmt
        self._mask = (1 << fmt.nbits) - 1
        self._values: np.ndarray | None = None
        self._sorted_values: np.ndarray | None = None
        self._sorted_patterns: np.ndarray | None = None
        self._classify_tables: list[np.ndarray | None] = [None] * fmt.nbits
        self._regime_table: np.ndarray | None = None

    # -- table construction (lazy) ---------------------------------------

    def _all_patterns(self) -> np.ndarray:
        return np.arange(1 << self._fmt.nbits, dtype=np.uint64)

    def _build(self, kind: str, builder):
        """Run one lazy table build under the LUT-build telemetry span."""
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return builder()
        with telemetry.span("formats.lut.build"):
            table = builder()
        telemetry.count("formats.lut.tables_built")
        telemetry.count(f"formats.lut.tables_built.{kind}")
        return table

    def _ensure_values(self) -> np.ndarray:
        if self._values is None:
            self._values = self._build(
                "values",
                lambda: np.asarray(
                    self._fmt.decode_raw(self._all_patterns()), dtype=np.float64
                ),
            )
        return self._values

    def _ensure_sorted(self) -> None:
        if self._sorted_values is not None:
            return
        values = self._ensure_values()

        def build():
            finite = np.nonzero(np.isfinite(values) & (values != 0))[0]
            order = np.argsort(values[finite], kind="stable")
            return values[finite][order], finite[order].astype(self._fmt.dtype)

        self._sorted_values, self._sorted_patterns = self._build("sorted", build)

    def _ensure_classify(self, bit_index: int) -> np.ndarray:
        table = self._classify_tables[bit_index]
        if table is None:
            table = self._build(
                "classify",
                lambda: np.asarray(
                    self._fmt.classify_raw(self._all_patterns(), bit_index),
                    dtype=np.int64,
                ),
            )
            self._classify_tables[bit_index] = table
        return table

    def _ensure_regime(self) -> np.ndarray:
        if self._regime_table is None:
            self._regime_table = self._build(
                "regime",
                lambda: np.asarray(
                    self._fmt.regime_raw(self._all_patterns()), dtype=np.int64
                ),
            )
        return self._regime_table

    def _indices(self, bits) -> np.ndarray:
        return np.asarray(bits).astype(np.int64) & np.int64(self._mask)

    # -- backend protocol ------------------------------------------------

    def from_bits(self, bits) -> np.ndarray:
        return self._ensure_values()[self._indices(bits)]

    def to_bits(self, values) -> np.ndarray:
        self._ensure_sorted()
        array = np.asarray(values, dtype=np.float64)
        flat = array.reshape(-1)
        idx = np.searchsorted(self._sorted_values, flat)
        idx = np.minimum(idx, self._sorted_values.size - 1)
        # Exactly representable, finite, nonzero values resolve by table;
        # everything else (values needing rounding, zeros with a sign,
        # NaN/inf saturation) delegates to the direct codec so rounding
        # semantics cannot drift between backends.
        exact = (self._sorted_values[idx] == flat) & np.isfinite(flat) & (flat != 0)
        out = np.empty(flat.shape, dtype=self._fmt.dtype)
        out[exact] = self._sorted_patterns[idx[exact]]
        if not np.all(exact):
            rest = ~exact
            out[rest] = np.asarray(
                self._fmt.encode_raw(flat[rest]), dtype=self._fmt.dtype
            )
        return out.reshape(array.shape)

    def classify_bits(self, bits, bit_index: int) -> np.ndarray:
        return self._ensure_classify(bit_index)[self._indices(bits)]

    def classify_rows(self, bits_rows, bit_indices) -> np.ndarray:
        rows = np.asarray(bits_rows)
        indices = self._indices(rows)
        out = np.empty(rows.shape, dtype=np.int64)
        for i, bit in enumerate(np.asarray(bit_indices).tolist()):
            out[i] = self._ensure_classify(int(bit))[indices[i]]
        return out

    def regime_sizes(self, bits) -> np.ndarray:
        return self._ensure_regime()[self._indices(bits)]
