"""Unified number-format stack: protocol, spec grammar, registry, backends.

>>> from repro.formats import get_format
>>> get_format("posit16es1").nbits
16
>>> get_format("binary(8,23)").name
'ieee32'
>>> get_format("fixedposit(16,es=2,r=3)").backend_name
'lut'
"""

from repro.formats.backends import (
    BACKEND_ENV_VAR,
    LUT_MAX_BITS,
    DirectBackend,
    LUTBackend,
    make_backend,
    resolve_backend_name,
)
from repro.formats.base import NumberFormat
from repro.formats.fixedposit import FixedPositConfig, FixedPositTarget
from repro.formats.ieee import IEEETarget
from repro.formats.posit import PositTarget
from repro.formats.registry import (
    DEFAULT_FORMATS,
    available_formats,
    format_known,
    get_format,
    register_format,
    resolve,
)
from repro.formats.spec import FormatSpecError, canonical_spec, normalize_spec, parse_spec

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_FORMATS",
    "DirectBackend",
    "FixedPositConfig",
    "FixedPositTarget",
    "FormatSpecError",
    "IEEETarget",
    "LUTBackend",
    "LUT_MAX_BITS",
    "NumberFormat",
    "PositTarget",
    "available_formats",
    "canonical_spec",
    "format_known",
    "get_format",
    "make_backend",
    "normalize_spec",
    "parse_spec",
    "register_format",
    "resolve",
    "resolve_backend_name",
]
