"""Unified number-format stack: protocol, spec grammar, registry, backends.

:func:`resolve` is the one entry point for picking a format *and* its
codec backend — explicit ``backend=`` wins, then ``REPRO_FORMAT_BACKEND``,
then the automatic policy.

>>> from repro.formats import resolve
>>> resolve("posit16es1").nbits
16
>>> resolve("binary(8,23)").name
'ieee32'
>>> resolve("fixedposit(16,es=2,r=3)").backend_name
'lut'
>>> resolve("posit32", backend="composed").backend_name
'composed'
"""

from repro.formats.backends import (
    BACKEND_ENV_VAR,
    LUT_MAX_BITS,
    CodecBackend,
    DirectBackend,
    LUTBackend,
    batch_backend_name,
    flip_patterns,
    make_backend,
    resolve_backend_name,
)
from repro.formats.base import NumberFormat
from repro.formats.composed import COMPOSED_MAX_BITS, ComposedLUTBackend
from repro.formats.fixedposit import FixedPositConfig, FixedPositTarget
from repro.formats.ieee import IEEETarget
from repro.formats.jit import NumbaBackend, numba_available
from repro.formats.posit import PositTarget
from repro.formats.registry import (
    DEFAULT_FORMATS,
    available_formats,
    format_known,
    get_format,
    register_format,
    resolve,
)
from repro.formats.spec import FormatSpecError, canonical_spec, normalize_spec, parse_spec

__all__ = [
    "BACKEND_ENV_VAR",
    "COMPOSED_MAX_BITS",
    "CodecBackend",
    "ComposedLUTBackend",
    "DEFAULT_FORMATS",
    "DirectBackend",
    "FixedPositConfig",
    "FixedPositTarget",
    "FormatSpecError",
    "IEEETarget",
    "LUTBackend",
    "LUT_MAX_BITS",
    "NumbaBackend",
    "NumberFormat",
    "PositTarget",
    "available_formats",
    "batch_backend_name",
    "canonical_spec",
    "flip_patterns",
    "format_known",
    "get_format",
    "make_backend",
    "normalize_spec",
    "numba_available",
    "parse_spec",
    "register_format",
    "resolve",
    "resolve_backend_name",
]
