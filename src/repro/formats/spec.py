"""The format spec grammar: every format round-trips through a string.

A *spec* is a short string naming a (possibly parameterized) number
format.  Canonical specs double as registry names, so any format — not
just the eight the paper uses — can be named on the CLI, logged in a
campaign CSV, and rehydrated on the far side of a process pool.

Grammar (case-insensitive, whitespace ignored)::

    posit<N>            standard posit, es = 2      posit32, posit8
    posit<N>es<E>       posit with explicit es      posit16es1
    ieee16|32|64        native IEEE widths          ieee32
    binary16|32|64      aliases of the above        binary32 -> ieee32
    bfloat16            brain float
    binary(<E>,<F>)     custom IEEE layout with E exponent and F
                        fraction bits               binary(8,23) -> ieee32
    fixedposit(<N>[,es=<E>][,r=<R>])
                        fixed-posit (Gohil et al.)  fixedposit(32,es=2,r=5)

``binary(E,F)`` layouts matching a native width canonicalize onto it
(``binary(8,23)`` *is* ``ieee32``); anything else is served by the
software codec.  ``parse_spec`` returns a fresh, unregistered
:class:`NumberFormat` — :func:`repro.formats.get_format` adds caching
and user-registered names on top.
"""

from __future__ import annotations

import re

from repro.formats.base import NumberFormat


class FormatSpecError(ValueError):
    """A spec string that does not parse or describes an invalid format."""


_POSIT = re.compile(r"^posit(\d+)(?:es(\d+))?$")
_IEEE_NATIVE = re.compile(r"^(?:ieee|binary)(16|32|64)$")
_BINARY = re.compile(r"^binary\((\d+),(\d+)\)$")
_FIXEDPOSIT = re.compile(r"^fixedposit\((\d+)((?:,(?:es|r)=\d+)*)\)$")

#: (exponent_bits, fraction_bits) -> native format name.
_NATIVE_LAYOUTS = {
    (5, 10): "binary16",
    (8, 23): "binary32",
    (11, 52): "binary64",
    (8, 7): "bfloat16",
}


def normalize_spec(spec: str) -> str:
    """Lowercase and strip all whitespace (the grammar ignores both)."""
    return re.sub(r"\s+", "", str(spec).lower())


def parse_spec(spec: str, backend: str | None = None) -> NumberFormat:
    """Build the :class:`NumberFormat` a spec string describes.

    Raises :class:`FormatSpecError` for strings outside the grammar and
    for grammatical specs with invalid parameters (e.g. ``posit128``).
    """
    from repro.formats.fixedposit import FixedPositConfig, FixedPositTarget
    from repro.formats.ieee import IEEETarget
    from repro.formats.posit import PositTarget
    from repro.ieee.formats import FORMATS as IEEE_FORMATS, IEEEFormat
    from repro.posit.config import PositConfig

    text = normalize_spec(spec)

    match = _POSIT.match(text)
    if match:
        nbits = int(match.group(1))
        es = int(match.group(2)) if match.group(2) is not None else 2
        return PositTarget(_build(PositConfig, spec, nbits=nbits, es=es), backend)

    match = _IEEE_NATIVE.match(text)
    if match:
        return IEEETarget(IEEE_FORMATS[f"binary{match.group(1)}"], backend)

    if text == "bfloat16":
        return IEEETarget(IEEE_FORMATS["bfloat16"], backend)

    match = _BINARY.match(text)
    if match:
        exponent_bits, fraction_bits = int(match.group(1)), int(match.group(2))
        native = _NATIVE_LAYOUTS.get((exponent_bits, fraction_bits))
        if native is not None:
            return IEEETarget(IEEE_FORMATS[native], backend)
        if not 2 <= exponent_bits <= 11 or not 1 <= fraction_bits <= 52:
            raise FormatSpecError(
                f"binary({exponent_bits},{fraction_bits}) is outside the software "
                f"codec's range (2..11 exponent bits, 1..52 fraction bits)"
            )
        fmt = IEEEFormat(
            name=f"binary({exponent_bits},{fraction_bits})",
            exponent_bits=exponent_bits,
            fraction_bits=fraction_bits,
            float_dtype=None,
        )
        return IEEETarget(fmt, backend)

    match = _FIXEDPOSIT.match(text)
    if match:
        kwargs = {"nbits": int(match.group(1))}
        for key, value in re.findall(r"(es|r)=(\d+)", match.group(2)):
            kwargs[key] = int(value)
        return FixedPositTarget(_build(FixedPositConfig, spec, **kwargs), backend)

    raise FormatSpecError(
        f"spec {spec!r} does not match the format grammar "
        "(posit<N>[es<E>], ieee16/32/64, bfloat16, binary(<E>,<F>), "
        "fixedposit(<N>[,es=<E>][,r=<R>]))"
    )


def canonical_spec(spec: str) -> str:
    """The canonical name a spec resolves to (parses it fully)."""
    return parse_spec(spec).name


def _build(config_cls, spec: str, **kwargs):
    """Instantiate a config, converting validation errors to spec errors."""
    try:
        return config_cls(**kwargs)
    except ValueError as error:
        raise FormatSpecError(f"invalid spec {spec!r}: {error}") from error
