"""Posit number formats behind the :class:`NumberFormat` protocol."""

from __future__ import annotations

import numpy as np

from repro.formats.base import NumberFormat
from repro.posit.config import PositConfig
from repro.posit.decode import decode as posit_decode
from repro.posit.encode import encode as posit_encode
from repro.posit.fields import (
    PositField,
    classify_bit as posit_classify_bit,
    classify_bits_array,
    decompose,
    layout_string as posit_layout_string,
)


def posit_spec_name(config: PositConfig) -> str:
    """Canonical spec string of a posit configuration."""
    return f"posit{config.nbits}" if config.es == 2 else f"posit{config.nbits}es{config.es}"


class PositTarget(NumberFormat):
    """Posit storage (float -> posit on store, posit -> float on load)."""

    def __init__(self, config: PositConfig, backend: str | None = None) -> None:
        self.config = config
        self.name = posit_spec_name(config)
        self.nbits = config.nbits
        super().__init__(backend)

    @property
    def dtype(self) -> np.dtype:
        return self.config.dtype

    def encode_raw(self, values) -> np.ndarray:
        return posit_encode(np.asarray(values, dtype=np.float64), self.config)

    def decode_raw(self, bits) -> np.ndarray:
        return np.asarray(posit_decode(bits, self.config), dtype=np.float64)

    def classify_raw(self, bits, bit_index: int) -> np.ndarray:
        return posit_classify_bit(bits, bit_index, self.config)

    def classify_rows_raw(self, bits_rows, bit_indices) -> np.ndarray:
        # One decompose answers the whole (rows, trials) block.
        rows = np.asarray(bits_rows)
        fields = decompose(rows, self.config)
        column = np.asarray(bit_indices, dtype=np.int64).reshape(
            (-1,) + (1,) * (rows.ndim - 1)
        )
        return classify_bits_array(fields, column, self.config)

    def classify_many_raw(self, bits, bit_indices) -> np.ndarray:
        fields = decompose(bits, self.config)
        column = np.asarray(bit_indices, dtype=np.int64).reshape(
            (-1,) + (1,) * np.ndim(np.asarray(bits))
        )
        return classify_bits_array(fields, column, self.config)

    def regime_raw(self, bits) -> np.ndarray:
        return decompose(bits, self.config).run

    def field_label(self, field_id: int) -> str:
        return PositField(field_id).name

    def layout_string(self, pattern: int) -> str:
        return posit_layout_string(pattern, self.config)

    def describe(self) -> str:
        return self.config.describe()

    @property
    def field_enum(self):
        return PositField
