"""IEEE-754-style number formats behind the :class:`NumberFormat` protocol.

Covers the native widths (binary16/32/64), bfloat16, and arbitrary
``binary(e,f)`` layouts served by the software codec in
:mod:`repro.ieee.bits` (any exponent width up to 11 and fraction width
up to 52 — every layout float64 hosts exactly).
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import NumberFormat
from repro.ieee.bits import bits_to_float, float_to_bits
from repro.ieee.fields import IEEEField, field_of_bit, layout_string as ieee_layout_string
from repro.ieee.formats import IEEEFormat

#: Registry names of the native layouts (the seed repo's public names).
CANONICAL_IEEE_NAMES = {
    "binary16": "ieee16",
    "binary32": "ieee32",
    "binary64": "ieee64",
    "bfloat16": "bfloat16",
}


def ieee_spec_name(fmt: IEEEFormat) -> str:
    """Canonical spec string of an IEEE-style format."""
    return CANONICAL_IEEE_NAMES.get(
        fmt.name, f"binary({fmt.exponent_bits},{fmt.fraction_bits})"
    )


class IEEETarget(NumberFormat):
    """IEEE-754 (or bfloat16, or custom ``binary(e,f)``) storage."""

    def __init__(self, fmt: IEEEFormat, backend: str | None = None) -> None:
        self.format = fmt
        self.name = ieee_spec_name(fmt)
        self.nbits = fmt.nbits
        super().__init__(backend)

    @property
    def dtype(self) -> np.dtype:
        return self.format.dtype

    def encode_raw(self, values) -> np.ndarray:
        return float_to_bits(np.asarray(values), self.format)

    def decode_raw(self, bits) -> np.ndarray:
        with np.errstate(invalid="ignore"):
            return bits_to_float(bits, self.format).astype(np.float64)

    def classify_raw(self, bits, bit_index: int) -> np.ndarray:
        field = field_of_bit(bit_index, self.format)
        return np.full(np.shape(np.asarray(bits)), int(field), dtype=np.int64)

    def _field_constants(self, bit_indices) -> np.ndarray:
        return np.array(
            [int(field_of_bit(int(b), self.format)) for b in np.asarray(bit_indices)],
            dtype=np.int64,
        )

    def classify_rows_raw(self, bits_rows, bit_indices) -> np.ndarray:
        # An IEEE bit's field never depends on the value: each row is a
        # constant fill.
        shape = np.shape(np.asarray(bits_rows))
        column = self._field_constants(bit_indices).reshape(
            (-1,) + (1,) * (len(shape) - 1)
        )
        return np.broadcast_to(column, shape).copy()

    def classify_many_raw(self, bits, bit_indices) -> np.ndarray:
        shape = np.shape(np.asarray(bits))
        constants = self._field_constants(bit_indices)
        column = constants.reshape((-1,) + (1,) * len(shape))
        return np.broadcast_to(column, (constants.size,) + shape).copy()

    def field_label(self, field_id: int) -> str:
        return IEEEField(field_id).name

    def layout_string(self, pattern: int) -> str:
        return ieee_layout_string(pattern, self.format)

    def describe(self) -> str:
        return self.format.describe()

    @property
    def field_enum(self):
        return IEEEField
