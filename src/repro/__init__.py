"""Posit resiliency study: a reproduction of Schlueter, Poulos & Calhoun,
"Evaluating the Resiliency of Posits for Scientific Computing" (SC-W 2023).

The package layers:

* :mod:`repro.posit` — complete posit (2022 standard) implementation;
* :mod:`repro.ieee` — IEEE-754 bit-level substrate and analytic model;
* :mod:`repro.formats` — the unified number-format registry: spec
  strings (``posit16es1``, ``binary(8,23)``, ``fixedposit(32,es=2,r=5)``)
  resolve to codec-backed formats every other layer consumes;
* :mod:`repro.datasets` — synthetic SDRBench-equivalent fields (Table 1);
* :mod:`repro.inject` — the fault-injection campaign engine (Fig. 8);
* :mod:`repro.metrics` — QCAT-equivalent error metrics;
* :mod:`repro.analysis` — stratification, edge cases, closed-form prediction;
* :mod:`repro.experiments` — one runner per paper table/figure;
* :mod:`repro.reporting` — tables/series rendering and CSV export.

Quickstart::

    import numpy as np
    from repro.posit import POSIT32, encode, decode
    from repro.inject import run_campaign, CampaignConfig
    import repro.datasets as datasets

    data = datasets.get("nyx/temperature").generate(seed=0, size=1 << 16)
    result = run_campaign(data, "posit32", CampaignConfig(trials_per_bit=313))
    print(result.trial_count, "trials")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
