"""Scientific dataset substrate: synthetic Table 1 fields + raw I/O."""

from repro.datasets.io import load_raw, preset_from_file, save_raw
from repro.datasets.presets import (
    ALL_PRESETS,
    DEFAULT_SIZE,
    FieldPreset,
    PublishedStats,
    build_presets,
)
from repro.datasets.registry import by_dataset, datasets, get, keys, register
from repro.datasets.summary import FieldSummary, summarize_all, summarize_field
from repro.datasets.transforms import (
    PowerOfTwoScale,
    scaled_storage_roundtrip,
    unit_median_scale,
)
from repro.datasets.synthetic import (
    Component,
    Constant,
    Exponential,
    Laplace,
    Lognormal,
    Mixture,
    Normal,
    Uniform,
)

__all__ = [
    "ALL_PRESETS",
    "Component",
    "Constant",
    "DEFAULT_SIZE",
    "Exponential",
    "FieldPreset",
    "FieldSummary",
    "Laplace",
    "Lognormal",
    "Mixture",
    "Normal",
    "PowerOfTwoScale",
    "PublishedStats",
    "Uniform",
    "build_presets",
    "by_dataset",
    "datasets",
    "get",
    "keys",
    "load_raw",
    "preset_from_file",
    "register",
    "save_raw",
    "scaled_storage_roundtrip",
    "summarize_all",
    "summarize_field",
    "unit_median_scale",
]
