"""Synthetic scientific-field generators.

The paper draws values from SDRBench datasets (CESM, EXAFEL, HACC,
Hurricane Isabel, Nyx), which are multi-gigabyte downloads we cannot ship.
What the fault-injection analysis actually consumes is the *value
distribution* of each field — the magnitude mix (which sets the posit
regime-size population), the sign mix, and the zero fraction.  Table 1 of
the paper characterizes each field by mean/median/max/min/std; the
generators here are mixture models hand-fitted to those rows.

Everything is seeded and reproducible: a
:class:`~numpy.random.Generator` flows in from the caller.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np


class Component(abc.ABC):
    """One mixture component: draws `size` float64 samples."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw samples."""


@dataclass(frozen=True)
class Normal(Component):
    """Gaussian component."""

    mean: float
    std: float

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.normal(self.mean, self.std, size)


@dataclass(frozen=True)
class Lognormal(Component):
    """Lognormal component parameterized by its median and shape sigma."""

    median: float
    sigma: float
    #: Optional sign flip applied to all samples (for negative-valued tails).
    negate: bool = False

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        samples = rng.lognormal(np.log(self.median), self.sigma, size)
        return -samples if self.negate else samples


@dataclass(frozen=True)
class Uniform(Component):
    """Uniform component on [low, high)."""

    low: float
    high: float

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size)


@dataclass(frozen=True)
class Exponential(Component):
    """Exponential component with the given scale, optionally negated."""

    scale: float
    negate: bool = False

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        samples = rng.exponential(self.scale, size)
        return -samples if self.negate else samples


@dataclass(frozen=True)
class Laplace(Component):
    """Laplace (double exponential) component."""

    mean: float
    scale: float

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.laplace(self.mean, self.scale, size)


@dataclass(frozen=True)
class Constant(Component):
    """Degenerate component: all samples equal `value` (e.g. exact zeros)."""

    value: float = 0.0

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self.value, dtype=np.float64)


@dataclass(frozen=True)
class Mixture:
    """Weighted mixture of components with optional clipping.

    The weights are normalized; each sample is drawn from a component
    chosen by weight (multinomial partition, so the draw is a single pass
    per component — the vectorization idiom the HPC guides push).
    """

    components: tuple[Component, ...]
    weights: tuple[float, ...]
    clip_low: float | None = None
    clip_high: float | None = None
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.float32))

    def __post_init__(self) -> None:
        if len(self.components) != len(self.weights):
            raise ValueError("components and weights must have equal length")
        if not self.components:
            raise ValueError("mixture needs at least one component")
        if any(w < 0 for w in self.weights):
            raise ValueError("weights must be non-negative")
        if sum(self.weights) <= 0:
            raise ValueError("weights must not all be zero")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw `size` samples, clipped and cast to the target dtype."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        weights = np.asarray(self.weights, dtype=np.float64)
        weights = weights / weights.sum()
        counts = rng.multinomial(size, weights)
        parts = [
            component.sample(rng, int(count))
            for component, count in zip(self.components, counts)
            if count
        ]
        samples = np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)
        rng.shuffle(samples)
        if self.clip_low is not None or self.clip_high is not None:
            samples = np.clip(samples, self.clip_low, self.clip_high)
        return samples.astype(self.dtype)
