"""Raw binary I/O in the SDRBench layout.

SDRBench distributes each field as a headerless little-endian float32
(or float64) binary file; the paper's campaign "reads a binary file
containing a field from a scientific data set and loads it into an
array".  These helpers do exactly that, and can wrap a real file as a
:class:`~repro.datasets.presets.FieldPreset` so every experiment in this
repository runs unchanged on the actual data when available.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.datasets.presets import FieldPreset, PublishedStats
from repro.datasets.synthetic import Mixture, Constant


def load_raw(path: str | os.PathLike, dtype=np.float32, count: int | None = None) -> np.ndarray:
    """Load a headerless binary field (SDRBench convention).

    Parameters
    ----------
    path:
        File to read.
    dtype:
        Element type; SDRBench ships float32 for all the paper's fields.
    count:
        Optional cap on elements read (for sampling huge files).
    """
    file_path = Path(path)
    if not file_path.is_file():
        raise FileNotFoundError(f"dataset file not found: {file_path}")
    dtype = np.dtype(dtype)
    if file_path.stat().st_size % dtype.itemsize:
        raise ValueError(
            f"{file_path} size {file_path.stat().st_size} is not a multiple "
            f"of itemsize {dtype.itemsize}; wrong dtype?"
        )
    data = np.fromfile(file_path, dtype=dtype, count=-1 if count is None else count)
    if data.size == 0:
        raise ValueError(f"{file_path} contains no elements")
    return data


def save_raw(values, path: str | os.PathLike, dtype=np.float32) -> None:
    """Write a field as headerless binary (round-trips with load_raw)."""
    array = np.asarray(values).astype(dtype, copy=False)
    array.tofile(Path(path))


class _FileBackedMixture(Mixture):
    """Mixture stand-in that replays samples from a loaded file."""

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(components=(Constant(0.0),), weights=(1.0,))
        object.__setattr__(self, "_data", data)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        data = self._data
        if size >= data.size:
            return data[:size].copy() if size == data.size else np.resize(data, size)
        start = int(rng.integers(0, data.size - size + 1))
        return data[start : start + size].copy()


def preset_from_file(
    path: str | os.PathLike,
    dataset: str,
    field: str,
    dimensions: tuple[int, ...] | None = None,
    dtype=np.float32,
) -> FieldPreset:
    """Wrap a real SDRBench file as a registry-compatible preset.

    The returned preset samples contiguous windows of the real data, and
    its ``published`` statistics are computed from the file itself.
    """
    data = load_raw(path, dtype=dtype)
    stats = PublishedStats(
        mean=float(np.mean(data)),
        median=float(np.median(data)),
        maximum=float(np.max(data)),
        minimum=float(np.min(data)),
        std=float(np.std(data)),
    )
    return FieldPreset(
        dataset=dataset,
        field=field,
        dimensions=dimensions if dimensions is not None else (int(data.size),),
        mixture=_FileBackedMixture(data.astype(np.float32, copy=False)),
        published=stats,
    )
