"""The sixteen Table 1 fields as synthetic presets.

Each :class:`FieldPreset` pairs a mixture model with the summary
statistics the paper publishes for the real SDRBench field, so the
experiment harnesses can report generated-vs-published side by side
(see EXPERIMENTS.md).  The mixtures are fitted by hand to reproduce the
mean/median/extremes/std rows of Table 1 and — more importantly for the
analysis — the magnitude structure: the share of values with |x| > 1
(which controls the posit regime-size population), the sign mix, and the
zero fraction.

Full-scale SDRBench fields have 10^7..10^8 elements; the default
generated size is 2^20 (campaign statistics are insensitive to the
population size once it is much larger than the trial count, and tests
scale it down further).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import (
    Constant,
    Exponential,
    Laplace,
    Lognormal,
    Mixture,
    Normal,
    Uniform,
)

DEFAULT_SIZE = 1 << 20


@dataclass(frozen=True)
class PublishedStats:
    """Summary row from the paper's Table 1."""

    mean: float
    median: float
    maximum: float
    minimum: float
    std: float


@dataclass(frozen=True)
class FieldPreset:
    """A named synthetic field: mixture + published reference stats."""

    dataset: str
    field: str
    dimensions: tuple[int, ...]
    mixture: Mixture
    published: PublishedStats

    @property
    def key(self) -> str:
        """Registry key, e.g. ``hacc/vx``."""
        return f"{self.dataset.lower()}/{self.field.lower()}"

    @property
    def full_size(self) -> int:
        """Element count of the real field (product of dimensions)."""
        return int(np.prod(self.dimensions))

    def generate(self, seed: int | np.random.Generator = 0, size: int = DEFAULT_SIZE) -> np.ndarray:
        """Seeded draw of ``size`` float32 samples."""
        from repro.telemetry import get_telemetry

        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return self.mixture.sample(rng, size)
        with telemetry.span("datasets.generate"):
            samples = self.mixture.sample(rng, size)
        telemetry.count("datasets.samples", size)
        return samples


def _cesm_omega() -> FieldPreset:
    return FieldPreset(
        dataset="CESM",
        field="OMEGA",
        dimensions=(26, 1800, 3600),
        mixture=Mixture(
            components=(Laplace(mean=-4e-6, scale=2.2e-4),),
            weights=(1.0,),
            clip_low=-5.01e-3,
            clip_high=4.18e-3,
        ),
        published=PublishedStats(-3.88e-6, 3.41e-6, 4.18e-3, -5.01e-3, 3.11e-4),
    )


def _cesm_cloud() -> FieldPreset:
    return FieldPreset(
        dataset="CESM",
        field="CLOUD",
        dimensions=(26, 1800, 3600),
        mixture=Mixture(
            components=(Lognormal(median=2.89e-2, sigma=1.25),),
            weights=(1.0,),
            clip_low=0.0,
            clip_high=9.64e-1,
        ),
        published=PublishedStats(6.37e-2, 2.89e-2, 9.64e-1, -1.14e-17, 7.42e-2),
    )


def _cesm_relhum() -> FieldPreset:
    return FieldPreset(
        dataset="CESM",
        field="RELHUM",
        dimensions=(26, 1800, 3600),
        mixture=Mixture(
            components=(Exponential(scale=6.0), Normal(mean=51.0, std=16.0)),
            weights=(0.22, 0.78),
            clip_low=1.12e-3,
            clip_high=9.96e1,
        ),
        published=PublishedStats(4.07e1, 4.56e1, 9.96e1, 1.12e-3, 2.02e1),
    )


def _exafel_dark() -> FieldPreset:
    # Detector dark frame: nearly all values are ~1e-35 noise with a tiny
    # population of bright outliers reaching ~1.
    return FieldPreset(
        dataset="EXAFEL",
        field="smd-cxif5315-r129-dark",
        dimensions=(50, 32, 185, 388),
        mixture=Mixture(
            components=(
                Lognormal(median=2.02e-35, sigma=0.4),
                Uniform(low=1e-3, high=9.53e-1),
            ),
            weights=(1.0 - 1.3e-5, 1.3e-5),
            clip_low=6.81e-43,
            clip_high=9.53e-1,
        ),
        published=PublishedStats(2.18e-35, 2.02e-35, 9.53e-1, 6.81e-43, 1.94e-3),
    )


def _hacc_velocity(field: str, main_mean: float, tail_mean: float,
                   published: PublishedStats) -> FieldPreset:
    return FieldPreset(
        dataset="HACC",
        field=field,
        dimensions=(280953867,),
        mixture=Mixture(
            components=(
                Normal(mean=main_mean, std=215.0),
                Normal(mean=tail_mean, std=850.0),
            ),
            weights=(0.98, 0.02),
            clip_low=published.minimum,
            clip_high=published.maximum,
        ),
        published=published,
    )


def _hurricane_precip() -> FieldPreset:
    return FieldPreset(
        dataset="Hurricane",
        field="PRECIPf48",
        dimensions=(100, 500, 500),
        mixture=Mixture(
            components=(
                Lognormal(median=5e-9, sigma=1.5),
                Lognormal(median=1.2e-5, sigma=1.6),
            ),
            weights=(0.62, 0.38),
            clip_low=0.0,
            clip_high=7.51e-3,
        ),
        published=PublishedStats(1.24e-5, 7.09e-9, 7.51e-3, 0.0, 7.77e-5),
    )


def _hurricane_w() -> FieldPreset:
    return FieldPreset(
        dataset="Hurricane",
        field="Wf30",
        dimensions=(100, 500, 500),
        mixture=Mixture(
            components=(
                Laplace(mean=-7.8e-5, scale=0.09),
                Lognormal(median=2.5, sigma=0.7),
            ),
            weights=(0.998, 0.002),
            clip_low=-4.57,
            clip_high=1.55e1,
        ),
        published=PublishedStats(6.91e-3, -7.78e-5, 1.55e1, -4.57, 1.72e-1),
    )


def _hurricane_u() -> FieldPreset:
    return FieldPreset(
        dataset="Hurricane",
        field="Uf30",
        dimensions=(100, 500, 500),
        mixture=Mixture(
            components=(Normal(mean=-0.65, std=9.0), Normal(mean=0.0, std=26.0)),
            weights=(0.99, 0.01),
            clip_low=-7.95e1,
            clip_high=6.89e1,
        ),
        published=PublishedStats(-5.54e-1, -6.93e-1, 6.89e1, -7.95e1, 9.36),
    )


def _hurricane_p() -> FieldPreset:
    return FieldPreset(
        dataset="Hurricane",
        field="Pf48",
        dimensions=(100, 500, 500),
        mixture=Mixture(
            components=(Normal(mean=225.0, std=280.0), Normal(mean=830.0, std=700.0)),
            weights=(0.75, 0.25),
            clip_low=-3.41e3,
            clip_high=3.22e3,
        ),
        published=PublishedStats(3.76e2, 2.25e2, 3.22e3, -3.41e3, 4.55e2),
    )


def _hurricane_cloud() -> FieldPreset:
    return FieldPreset(
        dataset="Hurricane",
        field="CLOUDf48",
        dimensions=(100, 500, 500),
        mixture=Mixture(
            components=(Constant(0.0), Lognormal(median=1.0e-5, sigma=1.5)),
            weights=(0.70, 0.30),
            clip_low=0.0,
            clip_high=2.05e-3,
        ),
        published=PublishedStats(8.60e-6, 0.0, 2.05e-3, 0.0, 5.18e-5),
    )


def _hurricane_v() -> FieldPreset:
    return FieldPreset(
        dataset="Hurricane",
        field="Vf30",
        dimensions=(100, 500, 500),
        mixture=Mixture(
            components=(Normal(mean=3.5, std=9.2), Normal(mean=0.0, std=28.0)),
            weights=(0.99, 0.01),
            clip_low=-6.86e1,
            clip_high=6.98e1,
        ),
        published=PublishedStats(3.63, 3.48, 6.98e1, -6.86e1, 9.76),
    )


def _nyx_velocity_x() -> FieldPreset:
    return FieldPreset(
        dataset="Nyx",
        field="velocity-x",
        dimensions=(512, 512, 512),
        mixture=Mixture(
            components=(
                Normal(mean=1.5e6, std=2.0e6),
                Normal(mean=-1.85e6, std=5.0e6),
            ),
            weights=(0.55, 0.45),
            clip_low=-5.04e7,
            clip_high=3.19e7,
        ),
        published=PublishedStats(3.54e2, 4.68e5, 3.19e7, -5.04e7, 4.97e6),
    )


def _nyx_dark_matter_density() -> FieldPreset:
    return FieldPreset(
        dataset="Nyx",
        field="dark-matter-density",
        dimensions=(512, 512, 512),
        mixture=Mixture(
            components=(
                Lognormal(median=0.393, sigma=1.37),
                Uniform(low=5e1, high=1.0e3),
            ),
            weights=(1.0 - 2e-4, 2e-4),
            clip_low=0.0,
            clip_high=1.38e4,
        ),
        published=PublishedStats(1.00, 3.93e-1, 1.38e4, 0.0, 8.37),
    )


def _nyx_temperature() -> FieldPreset:
    return FieldPreset(
        dataset="Nyx",
        field="temperature",
        dimensions=(512, 512, 512),
        mixture=Mixture(
            components=(
                Lognormal(median=7.09e3, sigma=0.59),
                Uniform(low=1e5, high=4.78e6),
            ),
            weights=(1.0 - 3e-5, 3e-5),
            clip_low=2.28e3,
            clip_high=4.78e6,
        ),
        published=PublishedStats(8.45e3, 7.09e3, 4.78e6, 2.28e3, 1.54e4),
    )


def build_presets() -> tuple[FieldPreset, ...]:
    """All sixteen Table 1 fields, in the paper's row order."""
    return (
        _cesm_omega(),
        _cesm_cloud(),
        _cesm_relhum(),
        _exafel_dark(),
        _hacc_velocity(
            "vy", -0.5, 230.0, PublishedStats(4.08, -4.98e-1, 3.74e3, -3.50e3, 2.41e2)
        ),
        _hacc_velocity(
            "vx", 23.0, -230.0, PublishedStats(1.79e1, 2.34e1, 3.39e3, -3.52e3, 2.27e2)
        ),
        _hacc_velocity(
            "vz", -1.2, 180.0, PublishedStats(2.45, -1.17, 3.18e3, -4.08e3, 2.63e2)
        ),
        _hurricane_precip(),
        _hurricane_w(),
        _hurricane_u(),
        _hurricane_p(),
        _hurricane_cloud(),
        _hurricane_v(),
        _nyx_velocity_x(),
        _nyx_dark_matter_density(),
        _nyx_temperature(),
    )


ALL_PRESETS: tuple[FieldPreset, ...] = build_presets()
