"""Dataset transforms: software-level mitigation via rescaling.

Posits concentrate both accuracy and flip-resilience near magnitude 1
(small regimes).  A cheap software mitigation therefore suggests itself:
scale a field by a power of two so its typical magnitude lands near 1,
store the scaled values, and undo the scale on use (exact, since the
factor is a power of two).  These helpers implement that transform and
the bookkeeping; the ``ext-scaling`` experiment measures how much it
buys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PowerOfTwoScale:
    """A reversible power-of-two scaling x -> x * 2**exponent."""

    exponent: int

    @property
    def factor(self) -> float:
        return float(2.0**self.exponent)

    def apply(self, values) -> np.ndarray:
        """Scale into storage space (exact: power-of-two multiply)."""
        array = np.asarray(values, dtype=np.float64)
        return np.ldexp(array, self.exponent)

    def undo(self, values) -> np.ndarray:
        """Scale back to problem space (exact inverse)."""
        array = np.asarray(values, dtype=np.float64)
        return np.ldexp(array, -self.exponent)


def unit_median_scale(values) -> PowerOfTwoScale:
    """Scale that moves the median magnitude of ``values`` to ~1.

    Uses the median of log2 |x| over nonzero elements, rounded to an
    integer so the factor is an exact power of two.  A field of all
    zeros gets the identity scale.
    """
    array = np.asarray(values, dtype=np.float64).reshape(-1)
    nonzero = array[array != 0]
    if nonzero.size == 0:
        return PowerOfTwoScale(0)
    median_log = float(np.median(np.log2(np.abs(nonzero))))
    return PowerOfTwoScale(-int(round(median_log)))


def scaled_storage_roundtrip(values, target, scale: PowerOfTwoScale) -> np.ndarray:
    """Store scaled values in ``target`` and undo the scale on load.

    The value a consumer observes under the scaled-storage discipline:
    undo(round_trip(apply(x))).  Power-of-two scaling commutes exactly
    with posit/IEEE rounding, so accuracy is unchanged; only the *bit
    layout* (and hence flip vulnerability) moves.
    """
    scaled = scale.apply(values)
    stored = target.round_trip(scaled)
    return scale.undo(stored)
