"""Table 1 regeneration: summary statistics for every registered field."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.presets import DEFAULT_SIZE, FieldPreset
from repro.datasets.registry import keys, get
from repro.metrics.summary import SummaryStats


@dataclass(frozen=True)
class FieldSummary:
    """One Table 1 row: generated stats next to the published ones."""

    preset: FieldPreset
    generated: SummaryStats

    def as_row(self) -> dict[str, object]:
        published = self.preset.published
        return {
            "dataset": self.preset.dataset,
            "field": self.preset.field,
            "dimensions": "x".join(str(d) for d in self.preset.dimensions),
            "mean": self.generated.mean,
            "median": self.generated.median,
            "max": self.generated.maximum,
            "min": self.generated.minimum,
            "std": self.generated.std,
            "paper_mean": published.mean,
            "paper_median": published.median,
            "paper_max": published.maximum,
            "paper_min": published.minimum,
            "paper_std": published.std,
        }


def summarize_field(key: str, seed: int = 0, size: int = DEFAULT_SIZE) -> FieldSummary:
    """Generate one field and summarize it."""
    preset = get(key)
    data = preset.generate(seed=seed, size=size)
    return FieldSummary(preset=preset, generated=SummaryStats.from_array(data))


def summarize_all(seed: int = 0, size: int = DEFAULT_SIZE) -> list[FieldSummary]:
    """Generate and summarize every registered field (Table 1)."""
    return [summarize_field(key, seed=seed, size=size) for key in keys()]
