"""Dataset registry: look up fields by name, list them, register new ones.

Keys are ``dataset/field`` in lower case (``nyx/velocity-x``).  User code
can register additional presets — e.g. fields loaded from real SDRBench
files via :mod:`repro.datasets.io` — next to the built-in synthetic ones.
"""

from __future__ import annotations

import difflib

from repro.datasets.presets import ALL_PRESETS, FieldPreset

_REGISTRY: dict[str, FieldPreset] = {preset.key: preset for preset in ALL_PRESETS}


def register(preset: FieldPreset, overwrite: bool = False) -> None:
    """Add a preset to the registry."""
    if preset.key in _REGISTRY and not overwrite:
        raise KeyError(f"preset {preset.key!r} already registered")
    _REGISTRY[preset.key] = preset


def get(key: str) -> FieldPreset:
    """Look up a preset, with did-you-mean on typos."""
    normalized = key.strip().lower()
    try:
        return _REGISTRY[normalized]
    except KeyError:
        close = difflib.get_close_matches(normalized, _REGISTRY, n=3)
        hint = f"; did you mean {', '.join(close)}?" if close else ""
        raise KeyError(f"unknown dataset field {key!r}{hint}") from None


def keys() -> list[str]:
    """All registered keys, sorted."""
    return sorted(_REGISTRY)


def by_dataset(dataset: str) -> list[FieldPreset]:
    """All presets belonging to one dataset (case-insensitive)."""
    wanted = dataset.strip().lower()
    return [preset for preset in _REGISTRY.values() if preset.dataset.lower() == wanted]


def datasets() -> list[str]:
    """Distinct dataset names, sorted."""
    return sorted({preset.dataset for preset in _REGISTRY.values()})
